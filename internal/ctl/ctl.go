// Package ctl is the control plane of a real Camelot deployment: a
// newline-delimited JSON request/response protocol over TCP through
// which a driver process operates a camelot-node — begins
// transactions, reads and writes data servers, runs commit, and
// interrogates the site for the recovery oracle's invariants.
//
// The control plane is deliberately not the transaction protocol:
// TranMan-to-TranMan traffic rides UDP datagrams (internal/transport)
// with no delivery guarantee, exactly as studied; the control
// connection is an ordinary reliable stream from the driver to each
// node, standing in for the application that would link against the
// Camelot library in a real deployment.
package ctl

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"

	"camelot/camelot"
	"camelot/internal/tid"
	"camelot/internal/wire"
)

// Ops understood by a node's control server.
const (
	OpPing     = "ping"     // liveness; echoes the site id
	OpPeers    = "peers"    // install the site-id -> UDP-address map
	OpBegin    = "begin"    // begin a transaction coordinated here
	OpWrite    = "write"    // write Key=Val at the local server under TID
	OpRead     = "read"     // read Key at the local server under TID
	OpAddSites = "addsites" // declare remote participants (coordinator)
	OpCommit   = "commit"   // run the commitment protocol (coordinator)
	OpAbort    = "abort"    // abort the transaction
	OpPeek     = "peek"     // committed value of Key, no transaction
	OpOutcome  = "outcome"  // this site's resolved outcome for a family
	OpProbe    = "probe"    // begin/write/abort liveness probe
	OpStats    = "stats"    // transport counters
	OpWriteKey = "writekey" // write Key=Val routed by the shard map under TID
	OpReadKey  = "readkey"  // read Key routed by the shard map under TID
	OpPeekKey  = "peekkey"  // committed value of Key routed by the shard map
	OpShardMap = "shardmap" // the node's serialized shard map
)

// Typed error codes carried in Response.Code, so drivers classify
// routing rejections without parsing error strings. A keyspace
// request the site can never serve fails immediately with one of
// these — loudly, instead of timing out.
const (
	CodeNoShard   = "no-shard"   // key belongs to no placed shard
	CodeWrongSite = "wrong-site" // key's home shard is hosted elsewhere
	CodeUnsharded = "unsharded"  // node runs without a shard map
)

// Request is one control-plane request. TIDs travel as their two
// integer halves (Family, Seq); peer addresses as a map keyed by the
// decimal site id (JSON objects cannot have integer keys).
type Request struct {
	Op          string            `json:"op"`
	Server      string            `json:"server,omitempty"`
	Family      uint64            `json:"family,omitempty"`
	Seq         uint64            `json:"seq,omitempty"`
	Key         string            `json:"key,omitempty"`
	Val         []byte            `json:"val,omitempty"`
	Sites       []uint32          `json:"sites,omitempty"`
	Peers       map[string]string `json:"peers,omitempty"`
	NonBlocking bool              `json:"nonblocking,omitempty"`
	// Protocol names the commit protocol explicitly ("2pc", "nb",
	// "paxos"); empty falls back to the node's default, then to the
	// NonBlocking flag. Only meaningful on OpCommit.
	Protocol string `json:"protocol,omitempty"`
}

// Response answers one Request. Err is empty on success; Aborted
// distinguishes a clean transaction abort from other failures so the
// driver can classify outcomes without parsing error strings.
type Response struct {
	OK      bool   `json:"ok"`
	Err     string `json:"err,omitempty"`
	Aborted bool   `json:"aborted,omitempty"`
	Site    uint32 `json:"site,omitempty"`
	Family  uint64 `json:"family,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	Val     []byte `json:"val,omitempty"`
	Present bool   `json:"present,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	Stats   *Stats `json:"stats,omitempty"`
	// Code is the typed error class for keyspace routing rejections
	// (CodeNoShard, CodeWrongSite, CodeUnsharded); empty otherwise.
	Code string `json:"code,omitempty"`
	// ShardMap is the node's canonical serialized shard map (OpShardMap).
	ShardMap []byte `json:"shardmap,omitempty"`
}

// Stats carries the node's transport counters plus the transaction
// manager's retry ledger — the numbers a fault driver pins to prove a
// storm stayed within its datagram budget.
type Stats struct {
	Sent     int    `json:"sent"`
	Recv     int    `json:"recv"`
	Dropped  int    `json:"dropped"`
	Oversize int    `json:"oversize"`
	Err      string `json:"err,omitempty"`
	// Retransmits counts datagrams re-sent by timer-driven retry
	// rounds; Inquiries counts outcome inquiries sent. Both are zero
	// in a fault-free run where every answer beats its timer.
	Retransmits int `json:"retransmits"`
	Inquiries   int `json:"inquiries"`
}

// maxLine bounds one protocol line; values are small keys and values,
// so a megabyte is generous.
const maxLine = 1 << 20

// Server serves the control protocol for one RealNode.
type Server struct {
	node *camelot.RealNode
	ln   net.Listener
	// defaultProtocol applies to commits whose request names none; set
	// before the address is published (camelot-node's -protocol flag).
	defaultProtocol string

	mu     sync.Mutex
	closed bool
}

// SetDefaultProtocol sets the commit protocol used when a commit
// request does not name one ("2pc", "nb", "paxos"; empty keeps the
// per-request NonBlocking flag in charge).
func (s *Server) SetDefaultProtocol(p string) { s.defaultProtocol = p }

// commitOptions maps a commit request's protocol selection — the
// request's own, else the server default, else the legacy NonBlocking
// flag — to commit options. Paxos runs at F=1, matching the chaos
// explorer's configuration.
func commitOptions(req Request, def string) camelot.Options {
	p := req.Protocol
	if p == "" {
		p = def
	}
	switch p {
	case "paxos":
		return camelot.Options{Paxos: true, PaxosF: 1}
	case "nb":
		return camelot.Options{NonBlocking: true}
	case "2pc":
		return camelot.Options{}
	}
	return camelot.Options{NonBlocking: req.NonBlocking}
}

// Serve starts a control server for node on addr (e.g.
// "127.0.0.1:0") and begins accepting connections.
func Serve(node *camelot.RealNode, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctl: listen %q: %w", addr, err)
	}
	s := &Server{node: node, ln: ln}
	//lint:rawgo host-side TCP accept loop; the control plane never runs under the simulation kernel
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections. In-flight handlers finish on
// their own connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.ln.Close()
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // closed
		}
		//lint:rawgo one goroutine per control connection; host-side only
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close() //nolint:errcheck // read loop below is the failure signal
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), maxLine)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var req Request
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			resp = Response{Err: fmt.Sprintf("bad request: %v", err)}
		} else {
			resp = s.handle(req)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req Request) Response {
	n := s.node
	t := tid.TID{Family: tid.FamilyID(req.Family), Seq: tid.Seq(req.Seq)}
	switch req.Op {
	case OpPing:
		return Response{OK: true, Site: uint32(n.ID())}

	case OpPeers:
		for k, addr := range req.Peers {
			id, err := strconv.ParseUint(k, 10, 32)
			if err != nil {
				return Response{Err: fmt.Sprintf("bad site id %q", k)}
			}
			if camelot.SiteID(id) == n.ID() {
				continue
			}
			if err := n.AddPeer(camelot.SiteID(id), addr); err != nil {
				return Response{Err: err.Error()}
			}
		}
		return Response{OK: true}

	case OpBegin:
		bt, err := n.Begin()
		if err != nil {
			return Response{Err: err.Error()}
		}
		return Response{OK: true, Family: uint64(bt.Family), Seq: uint64(bt.Seq)}

	case OpWrite:
		if err := n.Write(req.Server, t, req.Key, req.Val); err != nil {
			return Response{Err: err.Error()}
		}
		return Response{OK: true}

	case OpRead:
		val, err := n.Read(req.Server, t, req.Key)
		if err != nil {
			return Response{Err: err.Error()}
		}
		return Response{OK: true, Val: val, Present: val != nil}

	case OpAddSites:
		sites := make([]camelot.SiteID, 0, len(req.Sites))
		for _, id := range req.Sites {
			sites = append(sites, camelot.SiteID(id))
		}
		n.AddSites(t, sites)
		return Response{OK: true}

	case OpCommit:
		out, err := n.Commit(t, commitOptions(req, s.defaultProtocol))
		resp := Response{Outcome: out.String()}
		if err != nil {
			resp.Err = err.Error()
			resp.Aborted = errors.Is(err, camelot.ErrAborted)
			return resp
		}
		resp.OK = true
		return resp

	case OpAbort:
		n.Abort(t)
		return Response{OK: true}

	case OpPeek:
		val, ok := n.Peek(req.Server, req.Key)
		return Response{OK: true, Val: val, Present: ok}

	case OpOutcome:
		return Response{OK: true, Outcome: n.OutcomeOf(tid.FamilyID(req.Family)).String()}

	case OpWriteKey:
		if err := n.WriteKey(t, req.Key, req.Val); err != nil {
			return routeErrResponse(n, err)
		}
		return Response{OK: true}

	case OpReadKey:
		val, err := n.ReadKey(t, req.Key)
		if err != nil {
			return routeErrResponse(n, err)
		}
		return Response{OK: true, Val: val, Present: val != nil}

	case OpPeekKey:
		val, ok, err := n.PeekKey(req.Key)
		if err != nil {
			return routeErrResponse(n, err)
		}
		return Response{OK: true, Val: val, Present: ok}

	case OpShardMap:
		m := n.ShardMap()
		if m == nil {
			return Response{Err: "node runs without a shard map", Code: CodeUnsharded}
		}
		b, err := m.Marshal()
		if err != nil {
			return Response{Err: err.Error()}
		}
		return Response{OK: true, ShardMap: b}

	case OpProbe:
		pt, err := n.Begin()
		if err != nil {
			return Response{Err: fmt.Sprintf("cannot begin after quiesce: %v", err)}
		}
		// An empty server name probes whatever data server the site
		// hosts; a site the shard map assigns nothing degrades to a
		// begin/abort liveness check.
		srv := req.Server
		if srv == "" {
			if names := n.ServerNames(); len(names) > 0 {
				srv = names[0]
			} else {
				n.Abort(pt)
				return Response{OK: true}
			}
		}
		if err := n.Write(srv, pt, "oracle-probe", []byte("x")); err != nil {
			n.Abort(pt)
			return Response{Err: fmt.Sprintf("probe write blocked (leaked lock?): %v", err)}
		}
		n.Abort(pt)
		return Response{OK: true}

	case OpStats:
		sent, recv, dropped := n.Peer().Stats()
		st := &Stats{Sent: sent, Recv: recv, Dropped: dropped, Oversize: n.Peer().Oversize()}
		if err := n.Peer().Err(); err != nil {
			st.Err = err.Error()
		}
		cs := n.TM().Stats()
		st.Retransmits = cs.Retransmits
		st.Inquiries = cs.Inquiries
		return Response{OK: true, Stats: st}

	default:
		return Response{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// routeErrResponse classifies a keyspace-routing failure into its
// typed code so the driver rejects loudly instead of retrying or
// timing out; other errors pass through untyped.
func routeErrResponse(n *camelot.RealNode, err error) Response {
	resp := Response{Err: err.Error()}
	switch {
	case errors.Is(err, camelot.ErrNoShard):
		resp.Code = CodeNoShard
	case errors.Is(err, camelot.ErrWrongSite):
		resp.Code = CodeWrongSite
	case n.ShardMap() == nil:
		resp.Code = CodeUnsharded
	}
	return resp
}

// OutcomeFromString parses a Response.Outcome back into the wire type.
func OutcomeFromString(s string) wire.Outcome {
	switch s {
	case wire.OutcomeCommit.String():
		return wire.OutcomeCommit
	case wire.OutcomeAbort.String():
		return wire.OutcomeAbort
	}
	return wire.OutcomeUnknown
}
