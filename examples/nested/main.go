// Nested: Moss-model nested transactions, Camelot's other
// distinguishing feature. A travel-booking parent transaction tries
// two alternative itineraries as nested children: the first fails and
// aborts without disturbing the parent; the second commits into the
// parent, whose top-level commit then makes everything permanent
// atomically across sites.
package main

import (
	"fmt"
	"log"
	"time"

	"camelot/camelot"
	"camelot/internal/sim"
)

func main() {
	k := sim.New(3)
	cluster := camelot.NewCluster(k, camelot.DefaultConfig())
	cluster.AddNode(1).AddServer("trips")   // the application's own records
	cluster.AddNode(2).AddServer("airline") // remote airline inventory
	cluster.AddNode(3).AddServer("hotel")   // remote hotel inventory

	k.Go("main", func() {
		// Inventory: one seat on flight B, rooms at one hotel.
		setup, err := cluster.Node(2).Begin()
		must(err)
		must(setup.Write("airline", "flightA/seats", []byte("0")))
		must(setup.Write("airline", "flightB/seats", []byte("1")))
		must(setup.Write("hotel", "rooms", []byte("5")))
		must(setup.Commit())

		parent, err := cluster.Node(1).Begin()
		must(err)
		must(parent.Write("trips", "booking/42", []byte("pending")))

		// Attempt 1, as a nested child: flight A is full, so the child
		// aborts — undoing its hotel hold — while the parent lives on.
		try1, err := parent.Child()
		must(err)
		seats, err := try1.Read("airline", "flightA/seats")
		must(err)
		if string(seats) == "0" {
			must(try1.Write("hotel", "rooms", []byte("4"))) // held, then undone
			must(try1.Abort())
			fmt.Printf("[%7.1f ms] itinerary A unavailable: child aborted, parent intact\n", ms(k.Now()))
		}
		k.Sleep(100 * time.Millisecond) // child-abort notifications propagate

		// Attempt 2: flight B works; the child's updates and locks
		// merge into the parent on child commit.
		try2, err := parent.Child()
		must(err)
		must(try2.Write("airline", "flightB/seats", []byte("0")))
		must(try2.Write("hotel", "rooms", []byte("4")))
		must(try2.Commit())
		fmt.Printf("[%7.1f ms] itinerary B booked: child committed into parent\n", ms(k.Now()))
		k.Sleep(100 * time.Millisecond)

		// The parent finishes the booking; its top-level commit runs
		// distributed two-phase commit over every site the family
		// (including its children) touched.
		must(parent.Write("trips", "booking/42", []byte("confirmed")))
		must(parent.Commit())
		k.Sleep(500 * time.Millisecond)

		rooms, _ := cluster.Node(3).Server("hotel").Peek("rooms")
		seatsB, _ := cluster.Node(2).Server("airline").Peek("flightB/seats")
		booking, _ := cluster.Node(1).Server("trips").Peek("booking/42")
		fmt.Printf("[%7.1f ms] final state: booking=%s flightB/seats=%s rooms=%s\n",
			ms(k.Now()), booking, seatsB, rooms)
		k.Stop()
	})
	k.RunUntil(time.Minute)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
