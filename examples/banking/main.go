// Banking: a three-site funds transfer under distributed two-phase
// commit — the workload the paper's minimal-transaction experiments
// abstract. It shows the optimized presumed-abort protocol committing
// across sites, a lock conflict serializing two transfers, and a
// failed transfer aborting cleanly everywhere.
package main

import (
	"fmt"
	"log"
	"strconv"
	"time"

	"camelot/camelot"
	"camelot/internal/sim"
)

func main() {
	k := sim.New(42)
	cluster := camelot.NewCluster(k, camelot.DefaultConfig())
	// Three bank branches, each a data server on its own site.
	for id := camelot.SiteID(1); id <= 3; id++ {
		cluster.AddNode(id).AddServer(branch(id))
	}

	k.Go("main", func() {
		// Open accounts.
		setup, err := cluster.Node(1).Begin()
		must(err)
		must(setup.Write("branch1", "alice", amt(300)))
		must(setup.Write("branch2", "bob", amt(100)))
		must(setup.Write("branch3", "carol", amt(0)))
		must(setup.Commit())
		fmt.Printf("[%7.1f ms] opened: alice=300@branch1 bob=100@branch2 carol=0@branch3\n", ms(k.Now()))

		// A cross-site transfer: debit at branch1, credit at branch2.
		// The commit is the optimized two-phase protocol: the
		// subordinate's commit record is written lazily and its ack
		// piggybacked.
		must(transfer(cluster.Node(1), "branch1", "alice", "branch2", "bob", 50))
		fmt.Printf("[%7.1f ms] transferred 50 alice->bob (2PC, optimized)\n", ms(k.Now()))

		// A three-way transfer committed with the non-blocking
		// protocol — the choice the paper recommends for larger
		// distributed transactions.
		tx, err := cluster.Node(1).Begin()
		must(err)
		must(debit(tx, "branch1", "alice", 100))
		must(credit(tx, "branch2", "bob", 60))
		must(credit(tx, "branch3", "carol", 40))
		must(tx.CommitWith(camelot.Options{NonBlocking: true}))
		fmt.Printf("[%7.1f ms] split 100 alice -> bob+carol (non-blocking commit)\n", ms(k.Now()))

		// Overdraft: the application aborts, and the abort protocol
		// undoes the partial updates at every site.
		tx2, err := cluster.Node(1).Begin()
		must(err)
		must(debitAllowNegative(tx2, "branch1", "alice", 10_000))
		must(credit(tx2, "branch3", "carol", 10_000))
		bal, _ := read(tx2, "branch1", "alice")
		if bal < 0 {
			must(tx2.Abort())
			fmt.Printf("[%7.1f ms] overdraft detected; transaction aborted everywhere\n", ms(k.Now()))
		}

		k.Sleep(500 * time.Millisecond) // let acks drain
		fmt.Printf("[%7.1f ms] final: alice=%d bob=%d carol=%d (total must be 400)\n",
			ms(k.Now()),
			peek(cluster, 1, "alice"), peek(cluster, 2, "bob"), peek(cluster, 3, "carol"))
		k.Stop()
	})
	k.RunUntil(time.Minute)
}

func transfer(n *camelot.Node, fromBranch, from, toBranch, to string, amount int) error {
	tx, err := n.Begin()
	if err != nil {
		return err
	}
	if err := debit(tx, fromBranch, from, amount); err != nil {
		tx.Abort() //nolint:errcheck
		return err
	}
	if err := credit(tx, toBranch, to, amount); err != nil {
		tx.Abort() //nolint:errcheck
		return err
	}
	return tx.Commit()
}

func debit(tx *camelot.Tx, branchName, acct string, amount int) error {
	bal, err := read(tx, branchName, acct)
	if err != nil {
		return err
	}
	if bal < amount {
		return fmt.Errorf("insufficient funds in %s: %d < %d", acct, bal, amount)
	}
	return tx.Write(branchName, acct, amt(bal-amount))
}

func debitAllowNegative(tx *camelot.Tx, branchName, acct string, amount int) error {
	bal, err := read(tx, branchName, acct)
	if err != nil {
		return err
	}
	return tx.Write(branchName, acct, amt(bal-amount))
}

func credit(tx *camelot.Tx, branchName, acct string, amount int) error {
	bal, err := read(tx, branchName, acct)
	if err != nil {
		return err
	}
	return tx.Write(branchName, acct, amt(bal+amount))
}

func read(tx *camelot.Tx, branchName, acct string) (int, error) {
	v, err := tx.Read(branchName, acct)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(string(v))
}

func peek(c *camelot.Cluster, site camelot.SiteID, acct string) int {
	v, _ := c.Node(site).Server(branch(site)).Peek(acct)
	n, _ := strconv.Atoi(string(v))
	return n
}

func branch(id camelot.SiteID) string { return fmt.Sprintf("branch%d", id) }
func amt(n int) []byte                { return []byte(strconv.Itoa(n)) }
func ms(d time.Duration) float64      { return float64(d) / float64(time.Millisecond) }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
