// Nonblocking: the failure scenario that motivates the paper's §3.3.
// A coordinator crashes inside the commit protocol's window of
// vulnerability. Under two-phase commit the subordinates stay blocked
// — prepared, holding their write locks — until the coordinator
// recovers. Under the non-blocking protocol they time out, one
// promotes itself to coordinator, and the survivors finish by quorum.
package main

import (
	"errors"
	"fmt"
	"time"

	"camelot/camelot"
	"camelot/internal/sim"
)

func main() {
	fmt.Println("--- two-phase commit: coordinator crash blocks the subordinates ---")
	demo(camelot.Options{}, false)
	fmt.Println()
	fmt.Println("--- two-phase commit: blocked until the coordinator recovers ---")
	demo(camelot.Options{}, true)
	fmt.Println()
	fmt.Println("--- non-blocking commit: survivors finish without the coordinator ---")
	demo(camelot.Options{NonBlocking: true}, false)
}

// demo runs a three-site update transaction, crashes the coordinator
// mid-commit, and reports whether the subordinates resolve. If
// recover is set, the coordinator is restarted after a while.
func demo(opts camelot.Options, recoverCoord bool) {
	k := sim.New(7)
	cfg := camelot.DefaultConfig()
	cfg.PromotionTimeout = 2 * time.Second
	cfg.InquireInterval = 2 * time.Second
	cluster := camelot.NewCluster(k, cfg)
	for id := camelot.SiteID(1); id <= 3; id++ {
		cluster.AddNode(id).AddServer(fmt.Sprintf("srv%d", id))
	}

	k.Go("main", func() {
		tx, err := cluster.Node(1).Begin()
		if err != nil {
			return
		}
		tx.Write("srv1", "x", []byte("1")) //nolint:errcheck
		tx.Write("srv2", "y", []byte("2")) //nolint:errcheck
		tx.Write("srv3", "z", []byte("3")) //nolint:errcheck

		k.Go("commit", func() {
			err := tx.CommitWith(opts)
			switch {
			case err == nil:
				fmt.Printf("  [%7.1f ms] commit call returned: COMMITTED\n", ms(k.Now()))
			case errors.Is(err, camelot.ErrAborted):
				fmt.Printf("  [%7.1f ms] commit call returned: ABORTED\n", ms(k.Now()))
			}
		})
		// Crash the coordinator inside the window of vulnerability:
		// the subordinates have forced their prepare records (~40 ms
		// into the protocol under the paper's cost model: prepare
		// datagram 10 ms, vote round 3 ms, prepare force 15 ms) but
		// the outcome has not been decided or sent.
		k.Sleep(50 * time.Millisecond)
		cluster.Node(1).Crash()
		fmt.Printf("  [%7.1f ms] coordinator CRASHED; subordinates are prepared\n", ms(k.Now()))

		report := func() {
			blocked2 := holdsLock(cluster, 2, "y")
			blocked3 := holdsLock(cluster, 3, "z")
			fmt.Printf("  [%7.1f ms] subordinate locks held: site2=%v site3=%v\n",
				ms(k.Now()), blocked2, blocked3)
		}
		k.Sleep(5 * time.Second)
		report()
		if recoverCoord {
			cluster.Node(1).Recover()
			fmt.Printf("  [%7.1f ms] coordinator recovered; replaying its log\n", ms(k.Now()))
			k.Sleep(10 * time.Second)
			report()
		} else if opts.NonBlocking {
			proms := cluster.Node(2).TM().Stats().Promotions +
				cluster.Node(3).TM().Stats().Promotions
			fmt.Printf("  [%7.1f ms] subordinate promotions to coordinator: %d\n",
				ms(k.Now()), proms)
		}
		k.Stop()
	})
	k.RunUntil(5 * time.Minute)
}

// holdsLock probes whether the transaction still holds its write lock
// at the site by attempting a conflicting write.
func holdsLock(c *camelot.Cluster, id camelot.SiteID, key string) bool {
	tx, err := c.Node(id).Begin()
	if err != nil {
		return true
	}
	defer tx.Abort() //nolint:errcheck
	return tx.Write(fmt.Sprintf("srv%d", id), key, []byte("probe")) != nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
