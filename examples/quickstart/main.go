// Quickstart: a single Camelot site, one data server, a committed
// update, an aborted update, and a crash/recovery cycle — the
// smallest end-to-end tour of the public API.
//
// This example runs on the deterministic simulation runtime so its
// output is reproducible; swap sim.New for rt.Real() to run against
// the wall clock.
package main

import (
	"fmt"
	"log"
	"time"

	"camelot/camelot"
	"camelot/internal/sim"
)

func main() {
	k := sim.New(1)
	cluster := camelot.NewCluster(k, camelot.DefaultConfig())
	node := cluster.AddNode(1)
	node.AddServer("bank")

	k.Go("main", func() {
		// A committed update: begin, write, commit. The commit forces
		// one log record — "in the best (and typical) case, only one
		// log write is needed to commit the transaction."
		tx, err := node.Begin()
		if err != nil {
			log.Fatal(err)
		}
		if err := tx.Write("bank", "alice", []byte("100")); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%6.1f ms] committed alice=100\n", ms(k.Now()))

		// An aborted update leaves no trace.
		tx2, err := node.Begin()
		if err != nil {
			log.Fatal(err)
		}
		if err := tx2.Write("bank", "alice", []byte("999")); err != nil {
			log.Fatal(err)
		}
		if err := tx2.Abort(); err != nil {
			log.Fatal(err)
		}
		// The abort reply reaches the application before the servers
		// drop their locks and undo — Figure 1 orders step 10 before
		// step 11 — so give the one-way release a moment.
		k.Sleep(10 * time.Millisecond)
		v, _ := node.Server("bank").Peek("alice")
		fmt.Printf("[%6.1f ms] aborted write; alice=%s\n", ms(k.Now()), v)

		// A write buffered but never committed, then a crash: the
		// recovery process replays the log and only committed state
		// survives.
		tx3, err := node.Begin()
		if err != nil {
			log.Fatal(err)
		}
		if err := tx3.Write("bank", "bob", []byte("50")); err != nil {
			log.Fatal(err)
		}
		node.Crash()
		fmt.Printf("[%6.1f ms] CRASH with bob=50 uncommitted\n", ms(k.Now()))
		node.Recover()
		k.Sleep(100 * time.Millisecond)

		v, _ = node.Server("bank").Peek("alice")
		_, bobSurvived := node.Server("bank").Peek("bob")
		fmt.Printf("[%6.1f ms] recovered: alice=%s, bob present=%v\n",
			ms(k.Now()), v, bobSurvived)
		k.Stop()
	})
	k.RunUntil(time.Minute)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
