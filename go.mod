module camelot

go 1.22
