package camelot

import (
	"errors"
	"testing"
	"time"

	"camelot/internal/sim"
)

// These tests exercise the failure behavior that motivates the
// non-blocking protocol (§3.3): a two-phase-commit subordinate that
// loses its coordinator inside the window of vulnerability stays
// blocked — holding its write locks — until the coordinator recovers,
// while non-blocking subordinates promote one of themselves to
// coordinator and finish.

// crashCoordinatorMidCommit begins a distributed update at site 1,
// starts commit on a background thread, and crashes site 1 at the
// given moment after commit was issued. It returns the cluster.
func crashCoordinatorMidCommit(t *testing.T, k *sim.Kernel, c *Cluster,
	opts Options, crashAfter time.Duration) {
	t.Helper()
	tx, err := c.Node(1).Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := tx.Write("srv1", "x", []byte("1")); err != nil {
		t.Fatalf("local write: %v", err)
	}
	if err := tx.Write("srv2", "y", []byte("2")); err != nil {
		t.Fatalf("remote write: %v", err)
	}
	if err := tx.Write("srv3", "z", []byte("3")); err != nil {
		t.Fatalf("remote write: %v", err)
	}
	k.Go("commit", func() {
		tx.CommitWith(opts) //nolint:errcheck // the coordinator dies mid-call
	})
	k.Sleep(crashAfter)
	c.Node(1).Crash()
}

// subPreparedAndBlocked reports whether the site's server still holds
// the transaction's write lock (i.e. another transaction cannot take
// it).
func subHoldsLock(c *Cluster, id SiteID, key string) bool {
	tx, err := c.Node(id).Begin()
	if err != nil {
		return true
	}
	defer tx.Abort() //nolint:errcheck
	err = tx.Write(srvName(id), key, []byte("probe"))
	return err != nil
}

func TestTwoPhaseBlocksOnCoordinatorCrash(t *testing.T) {
	cfg := fastConfig()
	cfg.InquireInterval = 100 * time.Millisecond
	runSim(t, cfg, func(k *sim.Kernel, c *Cluster) {
		// With Fast params: prepare reaches subs at ~1ms, their forces
		// finish ~2ms, votes back ~3ms; crash before the coordinator's
		// commit force completes.
		crashCoordinatorMidCommit(t, k, c, Options{}, 4*time.Millisecond)

		// The subordinates are inside the window of vulnerability:
		// prepared, holding locks, and must stay blocked.
		k.Sleep(2 * time.Second)
		if !subHoldsLock(c, 2, "y") {
			t.Fatal("2PC subordinate released its locks with the outcome unknown")
		}
		inq := c.Node(2).TM().Stats().Inquiries
		if inq == 0 {
			t.Error("blocked subordinate never inquired at the coordinator")
		}

		// Recovery of the coordinator resolves the transaction (by
		// presumed abort if its commit record never became durable).
		c.Node(1).Recover()
		k.Sleep(2 * time.Second)
		if subHoldsLock(c, 2, "y") {
			t.Fatal("subordinate still blocked after coordinator recovery")
		}
	})
}

func TestNonBlockingSurvivesCoordinatorCrashBeforeReplication(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		// Crash right after the subs prepare (~4ms): no replication
		// happened, so the survivors form an abort quorum (Qa=2 of 3).
		crashCoordinatorMidCommit(t, k, c, Options{NonBlocking: true}, 4*time.Millisecond)
		k.Sleep(3 * time.Second)
		if subHoldsLock(c, 2, "y") || subHoldsLock(c, 3, "z") {
			t.Fatal("non-blocking subordinates stayed blocked after a single failure")
		}
		// Nothing may have committed partially.
		if _, ok := c.Node(2).Server("srv2").Peek("y"); ok {
			t.Error("site 2 committed without a quorum")
		}
		proms := c.Node(2).TM().Stats().Promotions + c.Node(3).TM().Stats().Promotions
		if proms == 0 {
			t.Error("no subordinate promoted itself to coordinator")
		}
	})
}

func TestNonBlockingSurvivesCoordinatorCrashAfterReplication(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		// Crash after the replication phase has reached the subs
		// (~8ms with Fast params: prepare 1+1, vote 1, replicate 1+1,
		// plus forces at 1ms each) but before outcome notifications.
		crashCoordinatorMidCommit(t, k, c, Options{NonBlocking: true}, 8*time.Millisecond)
		k.Sleep(3 * time.Second)
		if subHoldsLock(c, 2, "y") || subHoldsLock(c, 3, "z") {
			t.Fatal("non-blocking subordinates stayed blocked after a single failure")
		}
		// If both subs had forced intent records, the decision must be
		// commit; verify both sites agree either way.
		_, ok2 := c.Node(2).Server("srv2").Peek("y")
		_, ok3 := c.Node(3).Server("srv3").Peek("z")
		if ok2 != ok3 {
			t.Fatalf("split decision: site2 committed=%v site3 committed=%v", ok2, ok3)
		}
	})
}

func TestNonBlockingBlocksOnTwoFailures(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		// Crash the coordinator AND one subordinate after replication
		// began: the survivor alone (1 of 3) can form neither quorum
		// (Qc=2, Qa=2) and must block — "all sites may block if there
		// are two or more failures."
		crashCoordinatorMidCommit(t, k, c, Options{NonBlocking: true}, 8*time.Millisecond)
		c.Node(3).Crash()
		k.Sleep(5 * time.Second)
		if !subHoldsLock(c, 2, "y") {
			t.Fatal("lone survivor decided without a quorum")
		}
	})
}

func TestPreparedSubCrashRecoversAndResolves(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		tx, _ := c.Node(1).Begin()
		tx.Write("srv1", "x", []byte("1"))
		tx.Write("srv2", "y", []byte("2"))
		var commitErr error
		committed := false
		k.Go("commit", func() {
			commitErr = tx.Commit()
			committed = true
		})
		// Crash subordinate 2 after it prepared (~4ms) but before the
		// outcome reaches it.
		k.Sleep(4 * time.Millisecond)
		c.Node(2).Crash()
		k.Sleep(100 * time.Millisecond)
		c.Node(2).Recover()
		// The coordinator keeps retrying COMMIT; the recovered
		// subordinate is in doubt and inquires. Both paths converge.
		k.Sleep(3 * time.Second)
		if !committed {
			t.Fatal("coordinator's commit call never returned")
		}
		if commitErr == nil {
			// Commit succeeded: the recovered subordinate must apply y.
			v, ok := c.Node(2).Server("srv2").Peek("y")
			if !ok || string(v) != "2" {
				t.Fatalf("recovered sub: y = %q (%v), want \"2\"", v, ok)
			}
		} else if !errors.Is(commitErr, ErrAborted) {
			t.Fatalf("commit returned %v", commitErr)
		} else if _, ok := c.Node(2).Server("srv2").Peek("y"); ok {
			t.Fatal("aborted transaction's write visible after recovery")
		}
		if subHoldsLock(c, 2, "y") {
			t.Fatal("recovered subordinate still holds in-doubt locks")
		}
	})
}

func TestPartitionBlocksTwoPhaseThenHeals(t *testing.T) {
	cfg := fastConfig()
	cfg.InquireInterval = 100 * time.Millisecond
	runSim(t, cfg, func(k *sim.Kernel, c *Cluster) {
		tx, _ := c.Node(1).Begin()
		tx.Write("srv1", "x", []byte("1"))
		tx.Write("srv2", "y", []byte("2"))
		var commitErr error
		done := false
		k.Go("commit", func() {
			commitErr = tx.Commit()
			done = true
		})
		// Partition the coordinator from the subordinate after the
		// prepare round (~4ms). The sub is prepared and blocked; the
		// coordinator has already decided (or will) and retries.
		k.Sleep(4 * time.Millisecond)
		c.Network().SetPartition(1, 2, true)
		k.Sleep(time.Second)
		if done && commitErr == nil {
			// Coordinator committed before the cut: sub must still be
			// blocked.
			if !subHoldsLock(c, 2, "y") {
				t.Fatal("partitioned subordinate resolved without the coordinator")
			}
		}
		c.Network().SetPartition(1, 2, false)
		k.Sleep(3 * time.Second)
		if !done {
			t.Fatal("commit call never returned after partition healed")
		}
		if subHoldsLock(c, 2, "y") {
			t.Fatal("subordinate blocked after partition healed")
		}
	})
}

func TestProtocolsCompleteUnderMessageLoss(t *testing.T) {
	cfg := fastConfig()
	cfg.LossRate = 0.2
	for _, opts := range []Options{{}, {NonBlocking: true}} {
		opts := opts
		runSim(t, cfg, func(k *sim.Kernel, c *Cluster) {
			for i := 0; i < 10; i++ {
				tx, err := c.Node(1).Begin()
				if err != nil {
					t.Fatalf("Begin: %v", err)
				}
				if err := tx.Write("srv1", "x", []byte{byte(i)}); err != nil {
					t.Fatalf("write: %v", err)
				}
				// Remote writes may time out under loss (RPCs are
				// reliable here but the protocol datagrams are not);
				// drive the distributed protocol regardless.
				if err := tx.Write("srv2", "y", []byte{byte(i)}); err != nil {
					tx.Abort() //nolint:errcheck
					continue
				}
				if err := tx.CommitWith(opts); err != nil && !errors.Is(err, ErrAborted) {
					t.Fatalf("commit %d: %v", i, err)
				}
			}
			// Every transaction eventually resolved; no locks leak.
			k.Sleep(5 * time.Second)
			if subHoldsLock(c, 2, "y") {
				t.Fatal("locks leaked under message loss")
			}
		})
	}
}

func TestCoordinatorAbortsWhenSubNeverResponds(t *testing.T) {
	cfg := fastConfig()
	cfg.RetryInterval = 20 * time.Millisecond
	runSim(t, cfg, func(k *sim.Kernel, c *Cluster) {
		tx, _ := c.Node(1).Begin()
		tx.Write("srv1", "x", []byte("1"))
		tx.Write("srv2", "y", []byte("2"))
		// Site 2 dies before prepare; it never votes.
		c.Node(2).Crash()
		err := tx.Commit()
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("Commit with dead subordinate = %v, want ErrAborted", err)
		}
		// Coordinator's own updates must be undone (the release is an
		// asynchronous one-way call; give it a moment).
		k.Sleep(50 * time.Millisecond)
		if _, ok := c.Node(1).Server("srv1").Peek("x"); ok {
			t.Fatal("coordinator kept updates of an aborted transaction")
		}
	})
}
