package camelot

// Conformance tests pinning Paxos Commit's fault-free budgets, beside
// the 2PC and NB budgets of conformance_test.go. Gray & Lamport's
// analysis gives the protocol 2F(N+1)+3N+1 messages in the fault-free
// case and — with the coordinator co-located with one acceptor and
// acceptors batching all N instances into one accepted record — the
// same log-force and message-delay budget as two-phase commit when
// F=0. These tests assert the per-site counts exactly, so any stray
// datagram or force anywhere in the Paxos stack fails a test rather
// than quietly shifting a latency curve.

import (
	"fmt"
	"testing"
	"time"

	"camelot/internal/sim"
	"camelot/internal/trace"
)

// runSimN is runSim for n sites (1..n, one server per site), for the
// F=2 budgets that need five participants.
func runSimN(t *testing.T, cfg Config, n int, fn func(k *sim.Kernel, c *Cluster)) {
	t.Helper()
	k := sim.New(1)
	c := NewCluster(k, cfg)
	for id := SiteID(1); id <= SiteID(n); id++ {
		node := c.AddNode(id)
		node.AddServer(srvName(id))
	}
	k.Go("test", func() {
		fn(k, c)
		k.Stop()
	})
	k.RunUntil(10 * time.Minute)
	if msg := k.Deadlocked(); msg != "" {
		t.Fatal(msg)
	}
}

// commitTracedN is commitTraced over an n-site cluster.
func commitTracedN(t *testing.T, opts Options, n int, setup func(k *sim.Kernel, cl *Cluster), ops func(tx *Tx) error) (TID, *trace.Collector) {
	t.Helper()
	var (
		id TID
		c  *Cluster
	)
	runSimN(t, traceConfig(), n, func(k *sim.Kernel, cl *Cluster) {
		c = cl
		if setup != nil {
			setup(k, cl)
			cl.Trace().Reset()
		}
		tx, err := cl.Node(1).Begin()
		if err != nil {
			t.Errorf("Begin: %v", err)
			return
		}
		id = tx.ID()
		if err := ops(tx); err != nil {
			t.Errorf("operations: %v", err)
			return
		}
		if err := tx.CommitWith(opts); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		k.Sleep(2 * time.Second)
	})
	return id, c.Trace()
}

// writeAllN updates one key at each of n sites.
func writeAllN(n int) func(tx *Tx) error {
	return func(tx *Tx) error {
		for id := SiteID(1); id <= SiteID(n); id++ {
			if err := tx.Write(srvName(id), "k", []byte("v")); err != nil {
				return err
			}
		}
		return nil
	}
}

// TestProtocolBudgetTable is the three-protocol budget table:
// (protocol × F × workload mix) → exact per-site appends, forces and
// datagrams. The Paxos rows derive from Gray & Lamport with the
// ballot-0, co-location and batched-accept optimizations applied; the
// 2PC and NB rows restate the §3.2/§3.3 budgets so the three columns
// are pinned side by side.
func TestProtocolBudgetTable(t *testing.T) {
	type row struct {
		name  string
		opts  Options
		n     int                             // cluster size
		write func(tx *Tx) error              // workload
		ro    bool                            // readOnlyOps workload (site 3 reads only)
		want  map[SiteID]trace.FamilyCounters // per-site budget
	}
	rows := []row{
		// Two-phase commit, all sites updating: coordinator forces its
		// commit record; subordinates force their prepare.
		{
			name: "2pc/writeAll", opts: Options{}, n: 3, write: writeAll,
			want: map[SiteID]trace.FamilyCounters{
				1: {LogAppends: 3, LogForces: 1, MsgsSent: 4, MsgsRecv: 4},
				2: {LogAppends: 3, LogForces: 1, MsgsSent: 2, MsgsRecv: 2},
				3: {LogAppends: 3, LogForces: 1, MsgsSent: 2, MsgsRecv: 2},
			},
		},
		// Two-phase commit, read-only mix: the read-only site answers
		// one vote and is excluded from phase two.
		{
			name: "2pc/readOnly", opts: Options{}, n: 3, ro: true,
			want: map[SiteID]trace.FamilyCounters{
				1: {LogAppends: 3, LogForces: 1, MsgsSent: 3, MsgsRecv: 3},
				2: {LogAppends: 3, LogForces: 1, MsgsSent: 2, MsgsRecv: 2},
				3: {LogAppends: 0, LogForces: 0, MsgsSent: 1, MsgsRecv: 1},
			},
		},
		// Non-blocking commit: one replication round on top of 2PC.
		{
			name: "nb/writeAll", opts: Options{NonBlocking: true}, n: 3, write: writeAll,
			want: map[SiteID]trace.FamilyCounters{
				1: {LogAppends: 5, LogForces: 2, MsgsSent: 6, MsgsRecv: 6},
				2: {LogAppends: 4, LogForces: 2, MsgsSent: 3, MsgsRecv: 3},
				3: {LogAppends: 4, LogForces: 2, MsgsSent: 3, MsgsRecv: 3},
			},
		},
		// Paxos Commit, F=0: the sole acceptor is the coordinator, whose
		// batched accepted record doubles as its commit-point force — the
		// delay budget (forces and datagrams per site) is exactly 2PC's.
		// Only the coordinator's append count differs (the accepted
		// record is a fourth, unforced append).
		{
			name: "paxos/F=0/writeAll", opts: Options{Paxos: true}, n: 3, write: writeAll,
			want: map[SiteID]trace.FamilyCounters{
				1: {LogAppends: 4, LogForces: 1, MsgsSent: 4, MsgsRecv: 4},
				2: {LogAppends: 3, LogForces: 1, MsgsSent: 2, MsgsRecv: 2},
				3: {LogAppends: 3, LogForces: 1, MsgsSent: 2, MsgsRecv: 2},
			},
		},
		{
			name: "paxos/F=0/readOnly", opts: Options{Paxos: true}, n: 3, ro: true,
			want: map[SiteID]trace.FamilyCounters{
				1: {LogAppends: 4, LogForces: 1, MsgsSent: 3, MsgsRecv: 3},
				2: {LogAppends: 3, LogForces: 1, MsgsSent: 2, MsgsRecv: 2},
				3: {LogAppends: 0, LogForces: 0, MsgsSent: 1, MsgsRecv: 1},
			},
		},
		// Paxos Commit, F=1 over three sites: all three host acceptors.
		// Each participant pays one extra force (its half of the
		// acceptor's batched accepted record) and the 2a/2b fan-out
		// replaces the single vote datagram.
		{
			name: "paxos/F=1/writeAll", opts: Options{Paxos: true, PaxosF: 1}, n: 3, write: writeAll,
			want: map[SiteID]trace.FamilyCounters{
				1: {LogAppends: 5, LogForces: 2, MsgsSent: 6, MsgsRecv: 6},
				2: {LogAppends: 4, LogForces: 2, MsgsSent: 4, MsgsRecv: 4},
				3: {LogAppends: 4, LogForces: 2, MsgsSent: 4, MsgsRecv: 4},
			},
		},
		// Paxos Commit, F=1, read-only mix: the read-only site still
		// hosts an acceptor, so it keeps one force (the accepted batch)
		// and stays in the message flow, but writes no update or
		// prepared records — and the outcome reaches it fire-and-forget,
		// with no ack owed.
		{
			name: "paxos/F=1/readOnly", opts: Options{Paxos: true, PaxosF: 1}, n: 3, ro: true,
			want: map[SiteID]trace.FamilyCounters{
				1: {LogAppends: 5, LogForces: 2, MsgsSent: 6, MsgsRecv: 5},
				2: {LogAppends: 4, LogForces: 2, MsgsSent: 4, MsgsRecv: 4},
				3: {LogAppends: 1, LogForces: 1, MsgsSent: 3, MsgsRecv: 4},
			},
		},
		// Paxos Commit, F=2 over five sites: all five host acceptors.
		{
			name: "paxos/F=2/writeAll", opts: Options{Paxos: true, PaxosF: 2}, n: 5, write: writeAllN(5),
			want: map[SiteID]trace.FamilyCounters{
				1: {LogAppends: 5, LogForces: 2, MsgsSent: 12, MsgsRecv: 12},
				2: {LogAppends: 4, LogForces: 2, MsgsSent: 6, MsgsRecv: 6},
				3: {LogAppends: 4, LogForces: 2, MsgsSent: 6, MsgsRecv: 6},
				4: {LogAppends: 4, LogForces: 2, MsgsSent: 6, MsgsRecv: 6},
				5: {LogAppends: 4, LogForces: 2, MsgsSent: 6, MsgsRecv: 6},
			},
		},
	}
	for _, r := range rows {
		t.Run(r.name, func(t *testing.T) {
			var (
				setup func(k *sim.Kernel, cl *Cluster)
				ops   = r.write
			)
			if r.ro {
				setup = func(k *sim.Kernel, cl *Cluster) { seed(t, cl.Node(3), srvName(3), "k", "v0") }
				ops = readOnlyOps
			}
			id, tr := commitTracedN(t, r.opts, r.n, setup, ops)
			for site := SiteID(1); site <= SiteID(r.n); site++ {
				wantBudget(t, tr, id, site, r.want[site])
			}
		})
	}
}

// TestPaxosTotalMessagesMatchGrayLamport checks the aggregate against
// the paper's formula. With the co-location optimization the
// fault-free count is (N-1)(2F+4) + 2F datagrams for an all-update
// transaction — Gray & Lamport's 2F(N+1)+3N+1 minus the messages that
// co-location and delayed acks turn into local transitions — which
// degenerates to 2PC's 4(N-1) at F=0.
func TestPaxosTotalMessagesMatchGrayLamport(t *testing.T) {
	for _, tc := range []struct {
		f, n int
	}{
		{0, 3}, {1, 3}, {2, 5},
	} {
		t.Run(fmt.Sprintf("F=%d/N=%d", tc.f, tc.n), func(t *testing.T) {
			id, tr := commitTracedN(t, Options{Paxos: true, PaxosF: tc.f}, tc.n, nil, writeAllN(tc.n))
			total := 0
			for site := SiteID(1); site <= SiteID(tc.n); site++ {
				total += tr.Family(id, site).MsgsSent
			}
			want := (tc.n-1)*(2*tc.f+4) + 2*tc.f
			if total != want {
				t.Errorf("total datagrams = %d, want %d", total, want)
			}
		})
	}
}

// TestPaxosF0EqualsTwoPhaseDelayBudget is the degeneracy claim made
// exact: at F=0 every site's log-force and datagram counts under
// Paxos Commit equal its counts under optimized two-phase commit, for
// both the all-update and the read-only mix. (Append counts are
// allowed to differ at the coordinator — Paxos writes its batched
// accepted record where 2PC forces a commit record directly — but
// appends are not on the critical path.)
func TestPaxosF0EqualsTwoPhaseDelayBudget(t *testing.T) {
	for _, tc := range []struct {
		name string
		ro   bool
	}{
		{"writeAll", false},
		{"readOnly", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var (
				setup func(k *sim.Kernel, cl *Cluster)
				ops   = writeAll
			)
			if tc.ro {
				setup = func(k *sim.Kernel, cl *Cluster) { seed(t, cl.Node(3), srvName(3), "k", "v0") }
				ops = readOnlyOps
			}
			id2, tr2 := commitTracedN(t, Options{}, 3, setup, ops)
			idP, trP := commitTracedN(t, Options{Paxos: true}, 3, setup, ops)
			for site := SiteID(1); site <= 3; site++ {
				b2, bP := tr2.Family(id2, site), trP.Family(idP, site)
				if bP.LogForces != b2.LogForces || bP.MsgsSent != b2.MsgsSent || bP.MsgsRecv != b2.MsgsRecv {
					t.Errorf("%v: paxos F=0 %+v, 2pc %+v; delay budgets must be equal", site, bP, b2)
				}
			}
		})
	}
}
