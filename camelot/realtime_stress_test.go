package camelot

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRealtimeConcurrentFamilies hammers the per-family locking
// structure on the ordinary Go runtime: many transaction families in
// flight at once, spread across three sites, mixing local commits,
// distributed commits under both protocols, and aborts. Run under
// the race detector (make race / the CI race job) it checks that no
// two families' protocol work races on shared manager state now that
// the old single manager mutex is gone.
func TestRealtimeConcurrentFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cfg := fastConfig()
	c := NewRealtimeCluster(cfg)
	for id := SiteID(1); id <= 3; id++ {
		c.AddNode(id).AddServer(srvName(id))
	}

	const (
		workers    = 12
		txnsEach   = 6
		numNodes   = 3
		numServers = 3
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*txnsEach)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Workers begin at different sites so coordinators and
			// subordinates interleave everywhere.
			home := c.Node(SiteID(1 + w%numNodes))
			for i := 0; i < txnsEach; i++ {
				tx, err := home.Begin()
				if err != nil {
					errs <- fmt.Errorf("worker %d begin %d: %w", w, i, err)
					return
				}
				key := fmt.Sprintf("w%d-k%d", w, i)
				// Touch the local server and one remote server so most
				// families run a distributed protocol.
				local := srvName(home.ID())
				remote := srvName(SiteID(1 + (w+i+1)%numServers))
				if err := tx.Write(local, key, []byte("v")); err != nil {
					errs <- fmt.Errorf("worker %d write %d: %w", w, i, err)
					return
				}
				if remote != local {
					if err := tx.Write(remote, key, []byte("v")); err != nil {
						errs <- fmt.Errorf("worker %d remote write %d: %w", w, i, err)
						return
					}
				}
				switch i % 3 {
				case 0:
					err = tx.Commit()
				case 1:
					err = tx.CommitWith(Options{NonBlocking: true})
				default:
					err = tx.Abort()
					if err == nil {
						continue
					}
					errs <- fmt.Errorf("worker %d abort %d: %w", w, i, err)
					return
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d commit %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Every committed key is durable at its coordinator's local server;
	// aborted keys (i%3 == 2) must not be. Both outcomes apply
	// asynchronously after Commit/Abort returns, so poll under a
	// deadline in each direction.
	deadline := time.Now().Add(10 * time.Second)
	for w := 0; w < workers; w++ {
		home := c.Node(SiteID(1 + w%numNodes))
		for i := 0; i < txnsEach; i++ {
			key := fmt.Sprintf("w%d-k%d", w, i)
			srv := home.Server(srvName(home.ID()))
			wantVisible := i%3 != 2
			for {
				if _, ok := srv.Peek(key); ok == wantVisible {
					break
				}
				if !time.Now().Before(deadline) {
					if wantVisible {
						t.Fatalf("committed key %s never became visible at site %d", key, home.ID())
					}
					t.Fatalf("aborted key %s still visible at site %d", key, home.ID())
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}

	// The managers stayed consistent: every family that began was
	// resolved one way or the other.
	var begun, committed, aborted int
	for id := SiteID(1); id <= 3; id++ {
		s := c.Node(id).TM().Stats()
		begun += s.Begun
		committed += s.Committed
		aborted += s.Aborted
	}
	if begun != workers*txnsEach {
		t.Errorf("Begun = %d, want %d", begun, workers*txnsEach)
	}
	if committed == 0 || aborted == 0 {
		t.Errorf("Committed = %d, Aborted = %d; stress should produce both", committed, aborted)
	}
}
