package camelot

import (
	"fmt"
	"testing"
	"time"

	"camelot/internal/sim"
)

// TestSimulationLockWaitsAreZero pins the determinism invariant the
// per-family refactor relies on: the simulation kernel only switches
// threads at parks, and no code path holds a manager lock across a
// park, so no lock acquisition ever blocks in simulation — whether
// families run serialized or collide. A nonzero counter here means
// some new code parked while holding a lock, which would make the
// timeline schedule-dependent.
func TestSimulationLockWaitsAreZero(t *testing.T) {
	cfg := fastConfig()
	cfg.Trace = true
	runSim(t, cfg, func(k *sim.Kernel, c *Cluster) {
		// One family at a time, fully serialized.
		for i := 0; i < 3; i++ {
			seed(t, c.Node(1), "srv1", fmt.Sprintf("serial%d", i), "v")
		}
		// Then many colliding families: concurrent distributed commits
		// from every site, two protocols, plus aborts.
		done := 0
		for w := 0; w < 9; w++ {
			w := w
			k.Go(fmt.Sprintf("stress%d", w), func() {
				defer func() { done++ }()
				home := c.Node(SiteID(1 + w%3))
				tx, err := home.Begin()
				if err != nil {
					t.Errorf("worker %d begin: %v", w, err)
					return
				}
				key := fmt.Sprintf("collide%d", w)
				tx.Write(srvName(home.ID()), key, []byte("v"))         //nolint:errcheck
				tx.Write(srvName(SiteID(1+(w+1)%3)), key, []byte("v")) //nolint:errcheck
				switch w % 3 {
				case 0:
					tx.Commit() //nolint:errcheck
				case 1:
					tx.CommitWith(Options{NonBlocking: true}) //nolint:errcheck
				default:
					tx.Abort() //nolint:errcheck
				}
			})
		}
		k.Sleep(2 * time.Second)
		if done != 9 {
			t.Fatalf("only %d/9 stress transactions finished", done)
		}
		for id := SiteID(1); id <= 3; id++ {
			if got := c.Trace().LockWaitTotal(id); got != 0 {
				t.Errorf("site %d: LockWaitTotal = %d in simulation, want 0 (waits: %v)",
					id, got, c.Trace().LockWaits(id))
			}
		}
	})
}
