package camelot

// Conformance tests pinning the paper's commit-protocol budgets.
// §3.2–§3.4 argue about protocols in units of log forces and
// datagrams per site; these tests assert those budgets exactly, so a
// regression that adds a force or a message round anywhere in the
// protocol stack fails a test rather than quietly shifting a latency
// curve.

import (
	"strings"
	"testing"
	"time"

	"camelot/internal/sim"
	"camelot/internal/trace"
)

// traceConfig is fastConfig with tracing on and retry timers pushed
// far beyond the transaction's lifetime, so every counted datagram and
// force is a protocol necessity, never a retransmission.
func traceConfig() Config {
	cfg := fastConfig()
	cfg.Trace = true
	cfg.RetryInterval = 10 * time.Second
	cfg.InquireInterval = 10 * time.Second
	cfg.PromotionTimeout = 10 * time.Second
	cfg.RPCTimeout = 5 * time.Second
	return cfg
}

// commitTraced runs one transaction built by ops and committed with
// opts, drains the delayed commit records and batched acks, and
// returns the transaction's id and the cluster's collector. A non-nil
// setup runs first (e.g. to seed data); its activity is cleared from
// the collector so only the traced transaction is counted.
func commitTraced(t *testing.T, opts Options, setup func(k *sim.Kernel, cl *Cluster), ops func(tx *Tx) error) (TID, *trace.Collector) {
	t.Helper()
	var (
		id TID
		c  *Cluster
	)
	runSim(t, traceConfig(), func(k *sim.Kernel, cl *Cluster) {
		c = cl
		if setup != nil {
			setup(k, cl)
			cl.Trace().Reset()
		}
		tx, err := cl.Node(1).Begin()
		if err != nil {
			t.Errorf("Begin: %v", err)
			return
		}
		id = tx.ID()
		if err := ops(tx); err != nil {
			t.Errorf("operations: %v", err)
			return
		}
		if err := tx.CommitWith(opts); err != nil {
			t.Errorf("Commit: %v", err)
			return
		}
		// The delayed-commit optimization defers subordinate commit
		// records to the log flusher and acks to the ack flusher;
		// let them drain so the budget is the whole protocol's.
		k.Sleep(2 * time.Second)
	})
	return id, c.Trace()
}

// writeAll updates one key at each of the three sites.
func writeAll(tx *Tx) error {
	for id := SiteID(1); id <= 3; id++ {
		if err := tx.Write(srvName(id), "k", []byte("v")); err != nil {
			return err
		}
	}
	return nil
}

func wantBudget(t *testing.T, tr *trace.Collector, id TID, site SiteID, want trace.FamilyCounters) {
	t.Helper()
	if got := tr.Family(id, site); got != want {
		t.Errorf("%v budget = %+v, want %+v", site, got, want)
	}
}

// TestTwoPhaseBudget pins the optimized presumed-abort protocol of
// §3.2 for a three-site update transaction: the coordinator forces
// once (its commit record), each update subordinate forces once (its
// prepare record — the commit record is written lazily after the
// locks drop), and the messages are exactly one prepare/vote round
// plus one commit/ack round.
func TestTwoPhaseBudget(t *testing.T) {
	id, tr := commitTraced(t, Options{}, nil, writeAll)
	// Coordinator appends UPDATE, COMMIT, END; forces only COMMIT.
	wantBudget(t, tr, id, 1, trace.FamilyCounters{LogAppends: 3, LogForces: 1, MsgsSent: 4, MsgsRecv: 4})
	// Subordinates append UPDATE, PREPARE, COMMIT; force only PREPARE.
	for site := SiteID(2); site <= 3; site++ {
		wantBudget(t, tr, id, site, trace.FamilyCounters{LogAppends: 3, LogForces: 1, MsgsSent: 2, MsgsRecv: 2})
	}
}

// TestDelayedCommitSavesOneForcePerSubordinate pins §3.2's claim for
// the delayed-commit optimization: turning it off (ForceSubCommit)
// costs each update subordinate exactly one additional log force, and
// changes nothing else — not the coordinator's forces, not a single
// datagram anywhere.
func TestDelayedCommitSavesOneForcePerSubordinate(t *testing.T) {
	idOpt, trOpt := commitTraced(t, Options{}, nil, writeAll)
	idForced, trForced := commitTraced(t, Options{ForceSubCommit: true}, nil, writeAll)

	for site := SiteID(1); site <= 3; site++ {
		opt := trOpt.Family(idOpt, site)
		forced := trForced.Family(idForced, site)
		wantExtra := 1 // each update subordinate pays one more force
		if site == 1 {
			wantExtra = 0 // the coordinator always forces its commit record
		}
		if forced.LogForces != opt.LogForces+wantExtra {
			t.Errorf("%v: forces %d optimized, %d forced; want delta %d",
				SiteID(site), opt.LogForces, forced.LogForces, wantExtra)
		}
		if forced.MsgsSent != opt.MsgsSent || forced.MsgsRecv != opt.MsgsRecv {
			t.Errorf("%v: message budget changed: optimized %+v, forced %+v",
				SiteID(site), opt, forced)
		}
		if forced.LogAppends != opt.LogAppends {
			t.Errorf("%v: append budget changed: optimized %d, forced %d",
				SiteID(site), opt.LogAppends, forced.LogAppends)
		}
	}
}

// TestNonBlockingAddsOneReplicationRound pins §3.3: relative to
// two-phase commit, the non-blocking protocol costs exactly one more
// round — the coordinator forces one extra record (its prepare) and
// exchanges one replicate/ack pair with each subordinate, and each
// subordinate forces one extra record (its replicated intent).
func TestNonBlockingAddsOneReplicationRound(t *testing.T) {
	id2pc, tr2pc := commitTraced(t, Options{}, nil, writeAll)
	idNB, trNB := commitTraced(t, Options{NonBlocking: true}, nil, writeAll)

	const subs = 2
	coord2, coordNB := tr2pc.Family(id2pc, 1), trNB.Family(idNB, 1)
	if coordNB.LogForces != coord2.LogForces+1 {
		t.Errorf("coordinator forces: 2PC %d, NB %d; want exactly one more",
			coord2.LogForces, coordNB.LogForces)
	}
	if coordNB.MsgsSent != coord2.MsgsSent+subs || coordNB.MsgsRecv != coord2.MsgsRecv+subs {
		t.Errorf("coordinator messages: 2PC %+v, NB %+v; want one replicate/ack pair per subordinate",
			coord2, coordNB)
	}
	for site := SiteID(2); site <= 3; site++ {
		s2, sNB := tr2pc.Family(id2pc, site), trNB.Family(idNB, site)
		if sNB.LogForces != s2.LogForces+1 {
			t.Errorf("%v forces: 2PC %d, NB %d; want exactly one more", site, s2.LogForces, sNB.LogForces)
		}
		if sNB.MsgsSent != s2.MsgsSent+1 || sNB.MsgsRecv != s2.MsgsRecv+1 {
			t.Errorf("%v messages: 2PC %+v, NB %+v; want one replicate/ack pair more", site, s2, sNB)
		}
	}
	// And the absolute NB budget, so the baseline can't drift either.
	wantBudget(t, trNB, idNB, 1, trace.FamilyCounters{LogAppends: 5, LogForces: 2, MsgsSent: 6, MsgsRecv: 6})
}

// readOnlyOps updates sites 1 and 2 but only reads at site 3.
func readOnlyOps(tx *Tx) error {
	if err := tx.Write(srvName(1), "k", []byte("v")); err != nil {
		return err
	}
	if err := tx.Write(srvName(2), "k", []byte("v")); err != nil {
		return err
	}
	_, err := tx.Read(srvName(3), "k")
	return err
}

// TestReadOnlySubordinateBudget pins §3.4: a read-only subordinate
// writes no log records at all, sends exactly one message (its
// READ-ONLY vote), and receives exactly one (the prepare); it is
// excluded from phase two entirely. The budget holds under both
// protocols — in the non-blocking protocol the commit quorum forms
// from the update sites, leaving the read-only site out of
// replication too.
func TestReadOnlySubordinateBudget(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"TwoPhase", Options{}},
		{"NonBlocking", Options{NonBlocking: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			id, tr := commitTraced(t, tc.opts,
				func(k *sim.Kernel, cl *Cluster) { seed(t, cl.Node(3), srvName(3), "k", "v0") },
				readOnlyOps)
			wantBudget(t, tr, id, 3, trace.FamilyCounters{LogAppends: 0, LogForces: 0, MsgsSent: 1, MsgsRecv: 1})
			if sc := tr.Site(3); sc.LogForces != 0 || sc.LogAppends != 0 {
				t.Errorf("read-only site log activity: %+v, want none", sc)
			}
		})
	}
}

// timelineRun executes one traced three-site commit under datagram
// loss with kernel scheduling hooks wired in, and returns the
// formatted event log plus the commit error (nil or not, it must be
// the same on every run with the same seed).
func timelineRun(t *testing.T, seed int64) (string, error) {
	t.Helper()
	k := sim.New(seed)
	cfg := fastConfig()
	cfg.Trace = true
	cfg.LossRate = 0.05
	c := NewCluster(k, cfg)
	tr := c.Trace()
	k.SetHooks(sim.Hooks{
		ThreadSwitch: func(name string, _ time.Duration) { tr.ThreadSwitch(name) },
		TimerFire:    func(name string, _ time.Duration) { tr.TimerFire(name) },
	})
	for id := SiteID(1); id <= 3; id++ {
		c.AddNode(id).AddServer(srvName(id))
	}
	var commitErr error
	k.Go("txn", func() {
		tx, err := c.Node(1).Begin()
		if err != nil {
			commitErr = err
		} else if err := writeAll(tx); err != nil {
			commitErr = err
		} else {
			commitErr = tx.Commit()
		}
		k.Sleep(time.Second)
		k.Stop()
	})
	k.RunUntil(5 * time.Minute)
	if msg := k.Deadlocked(); msg != "" {
		t.Fatal(msg)
	}
	var sb strings.Builder
	for _, ev := range tr.Events() {
		sb.WriteString(ev.String())
		sb.WriteByte('\n')
	}
	return sb.String(), commitErr
}

// TestTraceReplayDeterminism: the simulation is deterministic under a
// fixed seed, so two runs produce byte-identical event timelines —
// thread switches, timer fires, datagram losses and all. This is what
// makes a captured trace replayable evidence rather than one sample.
func TestTraceReplayDeterminism(t *testing.T) {
	log1, err1 := timelineRun(t, 42)
	log2, err2 := timelineRun(t, 42)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("outcomes differ across replays: %v vs %v", err1, err2)
	}
	if log1 != log2 {
		t.Fatalf("event timelines differ across replays with the same seed:\nrun1 %d bytes, run2 %d bytes",
			len(log1), len(log2))
	}
	if len(log1) == 0 {
		t.Fatal("empty event timeline")
	}
	// A different seed must be allowed to differ (the loss pattern
	// moves), proving the comparison is not vacuous.
	log3, _ := timelineRun(t, 43)
	if log1 == log3 {
		t.Error("timelines for different seeds are identical; tracing is not capturing schedule detail")
	}
}
