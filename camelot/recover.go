package camelot

import (
	"camelot/internal/det"
	"camelot/internal/diskman"
	"camelot/internal/server"
	"camelot/internal/tid"
)

// recoverNode runs the recovery process against the node's freshly
// reopened log: load the disk manager's page image, redo the
// retained log tail's committed updates on top of it, reinstall
// in-doubt updates under re-acquired locks, and resume unresolved
// commitments. An unreadable log (wal.ErrCorrupt) is returned to the
// caller, which must keep the node down.
func recoverNode(n *Node) error {
	a, data, _, err := diskman.Recover(n.id, n.log, n.pages)
	if err != nil {
		return err
	}

	// Never reuse a previous incarnation's family identifiers. The
	// margin covers transactions that left no log records (read-only
	// or never-forced) in the crashed incarnation.
	n.tm.SetFamilyFloor(a.MaxLocalFamily + 1000)

	// Restore the resolved-outcome memory from the retained log tail
	// only, so status inquiries and presumed-abort inquiries for
	// pre-crash transactions answer correctly. Outcomes absorbed into
	// the page image stay out of RAM: the PageStore backstop wired in
	// start answers for them directly.
	var committed, aborted []tid.FamilyID
	//lint:ordered feeds a resolved-outcome set; insertion order is unobservable
	for t := range a.Committed {
		committed = append(committed, t.Family)
	}
	//lint:ordered feeds a resolved-outcome set; insertion order is unobservable
	for t := range a.Aborted {
		if t.IsTop() {
			aborted = append(aborted, t.Family)
		}
	}
	n.tm.RestoreResolved(committed, aborted)

	// Install the recovered image (page base + redone tail) into each
	// server.
	for _, name := range det.SortedKeys(data) {
		if srv := n.servers[name]; srv != nil {
			srv.Install(data[name])
		}
	}

	// Re-apply in-doubt updates under locks and resume the protocol
	// that will resolve them.
	for _, d := range a.InDoubt {
		var parts []server.Participant
		for _, name := range det.SortedKeys(d.Updates) {
			srv := n.servers[name]
			if srv == nil {
				continue
			}
			recs := d.Updates[name]
			ups := make([]server.RecoveredUpdate, 0, len(recs))
			for _, r := range recs {
				ups = append(ups, server.RecoveredUpdate{Key: r.Key, Old: r.Old, New: r.New})
			}
			srv.Reacquire(d.TID, ups)
			parts = append(parts, srv)
		}
		if d.NonBlocking && d.TID.Family.Origin() == n.id {
			n.tm.RestoreNBCoordinator(d.TID, d.Sites, d.CommitQuorum, d.AbortQuorum,
				d.Replicated, d.Votes, parts)
			continue
		}
		n.tm.RestorePreparedSub(d.TID, d.Coordinator, d.NonBlocking, d.Sites,
			d.CommitQuorum, d.AbortQuorum, d.Replicated, d.Votes, parts)
	}

	// Re-drive decisions whose acknowledgements never all arrived.
	for _, res := range a.Resume {
		n.tm.RestoreCommittedCoordinator(res.TID, res.UpdateSubs, res.NonBlocking)
	}
	return nil
}
