package camelot

import (
	"camelot/internal/core"
	"camelot/internal/det"
	"camelot/internal/diskman"
	"camelot/internal/server"
	"camelot/internal/tid"
	"camelot/internal/wal"
)

// recoverNode runs the recovery process against the node's freshly
// reopened log; see recoverSite.
func recoverNode(n *Node) error {
	return recoverSite(n.id, n.log, n.pages, n.tm, n.servers)
}

// recoverSite runs the recovery process for one site against its
// freshly reopened log: load the disk manager's page image, redo the
// retained log tail's committed updates on top of it, reinstall
// in-doubt updates under re-acquired locks, and resume unresolved
// commitments. An unreadable log (wal.ErrCorrupt) is returned to the
// caller, which must keep the site down. Both incarnations of a site
// — the simulated Node and the real-network RealNode — recover
// through this one function, so the fault coverage the chaos explorer
// builds up against it transfers to real deployments.
func recoverSite(id tid.SiteID, log *wal.Log, pages *diskman.PageStore, tm *core.Manager, servers map[string]*server.Server) error {
	a, data, _, err := diskman.Recover(id, log, pages)
	if err != nil {
		return err
	}

	// Never reuse a previous incarnation's family identifiers. The
	// margin covers transactions that left no log records (read-only
	// or never-forced) in the crashed incarnation.
	tm.SetFamilyFloor(a.MaxLocalFamily + 1000)

	// Restore the resolved-outcome memory from the retained log tail
	// only, so status inquiries and presumed-abort inquiries for
	// pre-crash transactions answer correctly. Outcomes absorbed into
	// the page image stay out of RAM: the PageStore backstop wired in
	// start answers for them directly.
	var committed, aborted []tid.FamilyID
	//lint:ordered feeds a resolved-outcome set; insertion order is unobservable
	for t := range a.Committed {
		committed = append(committed, t.Family)
	}
	//lint:ordered feeds a resolved-outcome set; insertion order is unobservable
	for t := range a.Aborted {
		if t.IsTop() {
			aborted = append(aborted, t.Family)
		}
	}
	tm.RestoreResolved(committed, aborted)

	// Install the recovered image (page base + redone tail) into each
	// server.
	for _, name := range det.SortedKeys(data) {
		if srv := servers[name]; srv != nil {
			srv.Install(data[name])
		}
	}

	// Re-apply in-doubt updates under locks and resume the protocol
	// that will resolve them.
	for _, d := range a.InDoubt {
		var parts []server.Participant
		for _, name := range det.SortedKeys(d.Updates) {
			srv := servers[name]
			if srv == nil {
				continue
			}
			recs := d.Updates[name]
			ups := make([]server.RecoveredUpdate, 0, len(recs))
			for _, r := range recs {
				ups = append(ups, server.RecoveredUpdate{Key: r.Key, Old: r.Old, New: r.New})
			}
			srv.Reacquire(d.TID, ups)
			parts = append(parts, srv)
		}
		if d.Paxos {
			tm.RestorePaxos(d.TID, d.Coordinator, d.Sites, d.Acceptors,
				d.Promised, d.Accepted, d.AccForced, d.Prepared, parts)
			continue
		}
		if d.NonBlocking && d.TID.Family.Origin() == id {
			tm.RestoreNBCoordinator(d.TID, d.Sites, d.CommitQuorum, d.AbortQuorum,
				d.Replicated, d.Votes, parts)
			continue
		}
		tm.RestorePreparedSub(d.TID, d.Coordinator, d.NonBlocking, d.Sites,
			d.CommitQuorum, d.AbortQuorum, d.Replicated, d.Votes, parts)
	}

	// Re-drive decisions whose acknowledgements never all arrived.
	for _, res := range a.Resume {
		tm.RestoreCommittedCoordinator(res.TID, res.UpdateSubs, res.NonBlocking)
	}
	return nil
}
