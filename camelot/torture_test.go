package camelot

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"camelot/internal/sim"
)

// The torture test: random crash, recovery, partition, and heal
// events are injected while a client pushes distributed update
// transactions through the cluster. After everything heals, the
// atomicity invariant must hold for every transaction: its writes are
// present at all three sites or at none, the client's view agrees
// with the sites, and no locks are leaked. This is run for both
// commitment protocols across many seeds; determinism of the
// simulation makes any failure replayable by its seed.

type tortureOutcome int

const (
	oCommitted tortureOutcome = iota
	oAborted
	oUnknown // coordinator crashed with the call in flight
)

func TestAtomicityUnderRandomFaults(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		for _, nb := range []bool{false, true} {
			name := fmt.Sprintf("seed=%d/nonblocking=%v", seed, nb)
			t.Run(name, func(t *testing.T) {
				tortureRun(t, int64(seed), nb)
			})
		}
	}
}

func tortureRun(t *testing.T, seed int64, nonblocking bool) {
	t.Helper()
	k := sim.New(seed)
	cfg := fastConfig()
	cfg.PromotionTimeout = 150 * time.Millisecond
	cfg.InquireInterval = 150 * time.Millisecond
	c := NewCluster(k, cfg)
	for id := SiteID(1); id <= 3; id++ {
		c.AddNode(id).AddServer(srvName(id))
	}
	rng := rand.New(rand.NewSource(seed * 7919))

	const txns = 15
	outcomes := make([]tortureOutcome, txns)

	// The fault injector: every so often, crash a subordinate or cut
	// a link, then repair it a bit later. Site 1 (the coordinator for
	// every transaction) is only crashed between transactions, by the
	// client loop itself.
	stopFaults := false
	k.Go("fault-injector", func() {
		for !stopFaults {
			k.Sleep(time.Duration(20+rng.Intn(150)) * time.Millisecond)
			if stopFaults {
				return
			}
			victim := SiteID(2 + rng.Intn(2))
			switch rng.Intn(3) {
			case 0:
				c.Node(victim).Crash()
				k.Sleep(time.Duration(30+rng.Intn(300)) * time.Millisecond)
				c.Node(victim).Recover()
			case 1:
				other := SiteID(1 + rng.Intn(3))
				if other == victim {
					other = 1
				}
				c.Network().SetPartition(victim, other, true)
				k.Sleep(time.Duration(30+rng.Intn(300)) * time.Millisecond)
				c.Network().SetPartition(victim, other, false)
			case 2:
				// Transient datagram loss.
				c.Network().SetLossRate(0.3)
				k.Sleep(time.Duration(30+rng.Intn(200)) * time.Millisecond)
				c.Network().SetLossRate(0)
			}
		}
	})

	k.Go("client", func() {
		for i := 0; i < txns; i++ {
			// Occasionally bounce the coordinator between transactions.
			if rng.Intn(6) == 0 {
				c.Node(1).Crash()
				k.Sleep(50 * time.Millisecond)
				c.Node(1).Recover()
				k.Sleep(50 * time.Millisecond)
			}
			key := fmt.Sprintf("k%d", i)
			tx, err := c.Node(1).Begin()
			if err != nil {
				outcomes[i] = oAborted
				continue
			}
			ok := true
			for id := SiteID(1); id <= 3; id++ {
				if err := tx.Write(srvName(id), key, []byte("v")); err != nil {
					ok = false
					break
				}
			}
			if !ok {
				tx.Abort() //nolint:errcheck
				outcomes[i] = oAborted
				continue
			}
			err = tx.CommitWith(Options{NonBlocking: nonblocking})
			switch {
			case err == nil:
				outcomes[i] = oCommitted
			case errors.Is(err, ErrAborted):
				outcomes[i] = oAborted
			default:
				outcomes[i] = oUnknown
			}
			k.Sleep(time.Duration(rng.Intn(100)) * time.Millisecond)
		}
		// Quiesce: stop faults, repair the world, let every pending
		// resolution finish.
		stopFaults = true
		c.Network().SetLossRate(0)
		for a := SiteID(1); a <= 3; a++ {
			for b := a + 1; b <= 3; b++ {
				c.Network().SetPartition(a, b, false)
			}
		}
		for id := SiteID(1); id <= 3; id++ {
			if c.Node(id).Crashed() {
				c.Node(id).Recover()
			}
		}
		k.Sleep(30 * time.Second)

		// Verify atomicity of every transaction.
		committedCount := 0
		for i := 0; i < txns; i++ {
			key := fmt.Sprintf("k%d", i)
			present := 0
			for id := SiteID(1); id <= 3; id++ {
				if _, ok := c.Node(id).Server(srvName(id)).Peek(key); ok {
					present++
				}
			}
			switch outcomes[i] {
			case oCommitted:
				if present != 3 {
					t.Errorf("txn %d: client saw COMMIT but %d/3 sites have the write", i, present)
				}
				committedCount++
			case oAborted:
				if present != 0 {
					t.Errorf("txn %d: client saw ABORT but %d/3 sites have the write", i, present)
				}
			case oUnknown:
				if present != 0 && present != 3 {
					t.Errorf("txn %d: outcome unknown and sites split %d/3 — atomicity violated", i, present)
				}
			}
		}
		// No leaked locks: every key must be writable now.
		for id := SiteID(1); id <= 3; id++ {
			tx, err := c.Node(id).Begin()
			if err != nil {
				t.Errorf("site %d unusable after quiesce: %v", id, err)
				continue
			}
			if err := tx.Write(srvName(id), "probe", []byte("x")); err != nil {
				t.Errorf("site %d: lock leaked: %v", id, err)
			}
			tx.Abort() //nolint:errcheck
		}
		if committedCount == 0 {
			t.Log("torture run committed nothing; faults may be too aggressive for this seed")
		}
		k.Stop()
	})
	k.RunUntil(10 * time.Minute)
	if msg := k.Deadlocked(); msg != "" {
		t.Fatal(msg)
	}
}
