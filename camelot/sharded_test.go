package camelot

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"camelot/internal/server"
	"camelot/internal/shardmap"
	"camelot/internal/sim"
)

// runShardedSim executes fn in a deterministic simulation of a
// sharded three-site cluster: 4 shards round-robin over sites 1–3,
// shard servers instantiated from the map.
func runShardedSim(t *testing.T, fn func(k *sim.Kernel, c *Cluster, m *shardmap.Map)) {
	t.Helper()
	m, err := shardmap.New(1, 4, []SiteID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New(1)
	c := NewCluster(k, fastConfig())
	c.SetShardMap(m)
	for id := SiteID(1); id <= 3; id++ {
		c.AddNode(id).AddShardServers()
	}
	k.Go("test", func() {
		fn(k, c, m)
		k.Stop()
	})
	k.RunUntil(10 * time.Minute)
	if msg := k.Deadlocked(); msg != "" {
		t.Fatal(msg)
	}
}

// crossShardKeys returns keys under prefix homed at distinct given
// sites, by deterministic candidate search.
func crossShardKeys(t *testing.T, m *shardmap.Map, prefix string, sites ...SiteID) []string {
	t.Helper()
	out := make([]string, len(sites))
	for si, want := range sites {
		found := false
		for i := 0; i < 1000 && !found; i++ {
			k := fmt.Sprintf("%s.x%d.%d", prefix, si, i)
			if m.SiteOf(k) == want {
				out[si] = k
				found = true
			}
		}
		if !found {
			t.Fatalf("no key under %q homed at site %d", prefix, want)
		}
	}
	return out
}

// TestShardedCrossShardCommit commits one transaction touching shards
// on all three sites, under each commitment protocol, and verifies
// the effects landed on exactly the key's own shard server at the
// key's own home site.
func TestShardedCrossShardCommit(t *testing.T) {
	runShardedSim(t, func(k *sim.Kernel, c *Cluster, m *shardmap.Map) {
		protocols := []struct {
			name string
			opts Options
		}{
			{"2pc", Options{}},
			{"nb", Options{NonBlocking: true}},
			{"paxos", Options{Paxos: true, PaxosF: 1}},
		}
		for pi, p := range protocols {
			keys := crossShardKeys(t, m, p.name, 1, 2, 3)
			coord := c.Node(m.SiteOf(keys[0]))
			tx, err := coord.Begin()
			if err != nil {
				t.Fatalf("[%s] Begin: %v", p.name, err)
			}
			for _, key := range keys {
				if err := tx.WriteKey(key, []byte(p.name)); err != nil {
					t.Fatalf("[%s] WriteKey(%q): %v", p.name, key, err)
				}
			}
			if err := tx.CommitWith(p.opts); err != nil {
				t.Fatalf("[%s] Commit: %v", p.name, err)
			}
			for _, key := range keys {
				home := c.Node(m.SiteOf(key))
				v, ok := home.Server(m.ServerFor(key)).Peek(key)
				if !ok || !bytes.Equal(v, []byte(p.name)) {
					t.Fatalf("[%s] after commit, %q = %q (%v) at site %d",
						p.name, key, v, ok, home.ID())
				}
			}
			_ = pi
		}
	})
}

// TestShardedAbortUndoesAllShards aborts a cross-shard transaction
// and verifies the undo reached every touched shard: pre-images
// restored at overwritten keys, blind writes absent.
func TestShardedAbortUndoesAllShards(t *testing.T) {
	runShardedSim(t, func(k *sim.Kernel, c *Cluster, m *shardmap.Map) {
		keys := crossShardKeys(t, m, "undo", 1, 2, 3)
		// Seed keys[0] so the abort must restore a pre-image, not just
		// drop a blind write.
		coord := c.Node(m.SiteOf(keys[0]))
		seedTx, err := coord.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := seedTx.WriteKey(keys[0], []byte("old")); err != nil {
			t.Fatal(err)
		}
		if err := seedTx.Commit(); err != nil {
			t.Fatal(err)
		}

		tx, err := coord.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range keys {
			if err := tx.WriteKey(key, []byte("new")); err != nil {
				t.Fatalf("WriteKey(%q): %v", key, err)
			}
		}
		if err := tx.Abort(); err != nil {
			t.Fatalf("Abort: %v", err)
		}
		// Remote undo is asynchronous (presumed abort): give the abort
		// datagrams time to land.
		k.Sleep(500 * time.Millisecond)
		v, ok := coord.Server(m.ServerFor(keys[0])).Peek(keys[0])
		if !ok || !bytes.Equal(v, []byte("old")) {
			t.Fatalf("after abort, %q = %q (%v), want pre-image \"old\"", keys[0], v, ok)
		}
		for _, key := range keys[1:] {
			home := c.Node(m.SiteOf(key))
			if v, ok := home.Server(m.ServerFor(key)).Peek(key); ok {
				t.Fatalf("after abort, blind write %q = %q survived at site %d", key, v, home.ID())
			}
		}
	})
}

// TestShardedReadKeyRoutes reads back a committed value through the
// keyspace API from a node that does not host the key's shard.
func TestShardedReadKeyRoutes(t *testing.T) {
	runShardedSim(t, func(k *sim.Kernel, c *Cluster, m *shardmap.Map) {
		keys := crossShardKeys(t, m, "read", 2)
		writer := c.Node(2)
		tx, err := writer.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.WriteKey(keys[0], []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		// Site 1 hosts a different shard; its read must route to site 2.
		reader := c.Node(1)
		rtx, err := reader.Begin()
		if err != nil {
			t.Fatal(err)
		}
		got, err := rtx.ReadKey(keys[0])
		if err != nil || !bytes.Equal(got, []byte("v")) {
			t.Fatalf("ReadKey(%q) from remote site = %q, %v", keys[0], got, err)
		}
		if err := rtx.Commit(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestShardedUncoveredKeyRejected pins the typed rejection: a key on
// an unplaced shard fails fast with server.ErrNoShard, before any
// lookup or network traffic.
func TestShardedUncoveredKeyRejected(t *testing.T) {
	// A map with holes: shards 1 and 3 unplaced.
	m := &shardmap.Map{Version: 1, Shards: 4, Placement: []SiteID{1, 0, 2, 0}}
	k := sim.New(1)
	c := NewCluster(k, fastConfig())
	c.SetShardMap(m)
	for id := SiteID(1); id <= 2; id++ {
		c.AddNode(id).AddShardServers()
	}
	var uncovered string
	for i := 0; i < 1000 && uncovered == ""; i++ {
		cand := fmt.Sprintf("hole.%d", i)
		if m.SiteOf(cand) == 0 {
			uncovered = cand
		}
	}
	if uncovered == "" {
		t.Fatal("no key hashed to an unplaced shard in 1000 candidates")
	}
	k.Go("test", func() {
		tx, err := c.Node(1).Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.WriteKey(uncovered, []byte("v")); !errors.Is(err, server.ErrNoShard) {
			t.Errorf("WriteKey(uncovered) = %v, want ErrNoShard", err)
		}
		if _, err := tx.ReadKey(uncovered); !errors.Is(err, server.ErrNoShard) {
			t.Errorf("ReadKey(uncovered) = %v, want ErrNoShard", err)
		}
		if err := tx.Abort(); err != nil {
			t.Fatal(err)
		}
		k.Stop()
	})
	k.RunUntil(10 * time.Minute)
	if msg := k.Deadlocked(); msg != "" {
		t.Fatal(msg)
	}
}

// TestShardedCrashRecoverCrossShard commits a cross-shard transaction,
// crashes every site, recovers, and verifies the effects survived on
// all shards — the sim-level rehearsal of the cluster driver's
// durability bounce.
func TestShardedCrashRecoverCrossShard(t *testing.T) {
	runShardedSim(t, func(k *sim.Kernel, c *Cluster, m *shardmap.Map) {
		keys := crossShardKeys(t, m, "dur", 1, 2, 3)
		coord := c.Node(m.SiteOf(keys[0]))
		tx, err := coord.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range keys {
			if err := tx.WriteKey(key, []byte("durable")); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.CommitWith(Options{ForceSubCommit: true}); err != nil {
			t.Fatal(err)
		}
		for id := SiteID(1); id <= 3; id++ {
			c.Node(id).Crash()
		}
		for id := SiteID(1); id <= 3; id++ {
			if err := c.Node(id).Recover(); err != nil {
				t.Fatalf("Recover(%d): %v", id, err)
			}
		}
		for _, key := range keys {
			home := c.Node(m.SiteOf(key))
			v, ok := home.Server(m.ServerFor(key)).Peek(key)
			if !ok || !bytes.Equal(v, []byte("durable")) {
				t.Fatalf("after bounce, %q = %q (%v) at site %d", key, v, ok, home.ID())
			}
		}
	})
}
