package camelot

import (
	"fmt"
	"time"

	"camelot/internal/core"
	"camelot/internal/det"
	"camelot/internal/diskman"
	"camelot/internal/rt"
	"camelot/internal/server"
	"camelot/internal/shardmap"
	"camelot/internal/tid"
	"camelot/internal/transport"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// RealConfig configures one real site: a transaction manager and data
// servers on the ordinary Go runtime, peers reached over UDP, and the
// log on a real file. Unlike the simulated Cluster there is no cost
// model — latency here is the actual machine's.
type RealConfig struct {
	// Site is this site's id; nonzero, unique across the deployment.
	Site SiteID
	// Listen is the UDP listen address, e.g. "127.0.0.1:0".
	Listen string
	// WALPath is the on-disk log file; created if absent, replayed by
	// Recover if not.
	WALPath string
	// Servers names the data servers to run. Ignored when ShardMap is
	// set: the map decides which shard servers this site hosts.
	Servers []string
	// ShardMap, if non-nil, makes the site's data tier shard-scoped:
	// the site hosts one data server per shard the map homes here
	// (per-shard lock managers and object tables, shared WAL), and the
	// keyspace methods (WriteKey, ReadKey, PeekKey) route by key. A
	// one-shard map reduces to the legacy single "store" server.
	ShardMap *shardmap.Map
	// Threads is the transaction-manager pool size.
	Threads int
	// GroupCommit enables log batching; FlushInterval bounds how long
	// lazily written records stay volatile.
	GroupCommit   bool
	FlushInterval time.Duration
	// LockTimeout bounds data-server lock waits.
	LockTimeout time.Duration
	// RetryInterval, InquireInterval, PromotionTimeout, and
	// AckFlushInterval tune the transaction manager's timers. These
	// mask real datagram loss, so keep them well above the network's
	// round-trip time.
	RetryInterval    time.Duration
	InquireInterval  time.Duration
	PromotionTimeout time.Duration
	AckFlushInterval time.Duration
	// RetryBackoffCap bounds the exponential backoff retransmits and
	// inquiries grow into during a partition; zero means 8×
	// RetryInterval (see core.Config.RetryBackoffCap).
	RetryBackoffCap time.Duration
	// WrapStore, if non-nil, wraps the node's stable log store —
	// fault-injection hooks (wal.FailStore) interpose here.
	WrapStore func(s wal.Store) wal.Store
	// Logf, if non-nil, receives diagnostics (unmaskable transport
	// losses such as oversize messages).
	Logf func(format string, args ...any)
}

// DefaultRealConfig returns loopback-friendly settings for site id:
// short retry timers (loopback RTT is microseconds) and group commit.
func DefaultRealConfig(id SiteID) RealConfig {
	return RealConfig{
		Site:             id,
		Listen:           "127.0.0.1:0",
		Servers:          []string{"store"},
		Threads:          5,
		GroupCommit:      true,
		FlushInterval:    25 * time.Millisecond,
		LockTimeout:      2 * time.Second,
		RetryInterval:    50 * time.Millisecond,
		InquireInterval:  50 * time.Millisecond,
		PromotionTimeout: 200 * time.Millisecond,
		AckFlushInterval: 10 * time.Millisecond,
	}
}

// RealNode is one Camelot site as a real process component: the same
// transaction manager, data servers, write-ahead log, and recovery
// process as a simulated Node, but on wall-clock time with a UDP
// transport and a file-backed log. cmd/camelot-node wraps one in a
// daemon; tests may also embed several in one process.
type RealNode struct {
	cfg     RealConfig
	r       rt.Runtime
	peer    *transport.UDPPeer
	store   *wal.FileStore
	pages   *diskman.PageStore
	log     *wal.Log
	tm      *core.Manager
	servers map[string]*server.Server
	set     *server.Set // non-nil when cfg.ShardMap is set
}

// StartRealNode opens (or creates) the WAL at cfg.WALPath, binds the
// UDP socket, and starts the site's processes. The caller must then
// call Recover — even on a fresh log, where it is a no-op — before
// serving traffic, and AddPeer for every other site as addresses
// become known.
func StartRealNode(cfg RealConfig) (*RealNode, error) {
	if cfg.Site == 0 {
		return nil, fmt.Errorf("camelot: site id 0 is reserved")
	}
	r := rt.Real()
	store, err := wal.OpenFileStore(cfg.WALPath)
	if err != nil {
		return nil, fmt.Errorf("camelot: open wal: %w", err)
	}
	peer, err := transport.NewUDPPeer(cfg.Site, cfg.Listen)
	if err != nil {
		store.Close() //nolint:errcheck // surfacing the bind error
		return nil, err
	}
	if cfg.Logf != nil {
		peer.SetLogf(cfg.Logf)
	}
	n := &RealNode{
		cfg:     cfg,
		r:       r,
		peer:    peer,
		store:   store,
		pages:   diskman.NewPageStore(),
		servers: make(map[string]*server.Server),
	}
	var st wal.Store = store
	if cfg.WrapStore != nil {
		st = cfg.WrapStore(st)
	}
	n.log = wal.Open(r, st, wal.Config{
		GroupCommit:   cfg.GroupCommit,
		FlushInterval: cfg.FlushInterval,
		Site:          cfg.Site,
	})
	n.tm = core.New(r, core.Config{
		Site:             cfg.Site,
		Threads:          cfg.Threads,
		RetryInterval:    cfg.RetryInterval,
		InquireInterval:  cfg.InquireInterval,
		PromotionTimeout: cfg.PromotionTimeout,
		AckFlushInterval: cfg.AckFlushInterval,
		RetryBackoffCap:  cfg.RetryBackoffCap,
	}, n.log, peer)
	n.tm.SetResolvedBackstop(n.pages.Outcome)
	if cfg.ShardMap != nil {
		// Shard servers must exist before Recover: the recovery process
		// installs replayed state into servers by name.
		n.set = server.NewSet(r, cfg.Site, cfg.ShardMap, n.tm, n.log, server.Config{
			LockTimeout: cfg.LockTimeout,
		})
		n.servers = n.set.Servers()
	} else {
		for _, name := range cfg.Servers {
			n.servers[name] = server.New(r, name, n.tm, n.log, server.Config{
				LockTimeout: cfg.LockTimeout,
			})
		}
	}
	peer.SetHandler(func(d transport.Datagram) {
		if msg, ok := d.Payload.(*wire.Msg); ok {
			n.tm.Deliver(msg)
		}
	})
	return n, nil
}

// Recover replays the on-disk log through the shared recovery process
// (the same code path a simulated Node recovers through): committed
// updates are redone into the servers, in-doubt updates reinstalled
// under locks, and unresolved commitments resumed. Call once at
// startup, before serving traffic.
func (n *RealNode) Recover() error {
	return recoverSite(n.cfg.Site, n.log, n.pages, n.tm, n.servers)
}

// ID returns the site id.
func (n *RealNode) ID() SiteID { return n.cfg.Site }

// Addr returns the bound UDP address, for exchanging with peers.
func (n *RealNode) Addr() string { return n.peer.Addr() }

// AddPeer registers (or replaces) the UDP address of another site.
func (n *RealNode) AddPeer(id SiteID, addr string) error {
	return n.peer.AddPeer(id, addr)
}

// Peer exposes the transport (for statistics).
func (n *RealNode) Peer() *transport.UDPPeer { return n.peer }

// TM exposes the transaction manager (for statistics).
func (n *RealNode) TM() *core.Manager { return n.tm }

// Server returns the named local data server, or nil.
func (n *RealNode) Server(name string) *server.Server { return n.servers[name] }

// Begin starts a top-level transaction coordinated by this site.
func (n *RealNode) Begin() (TID, error) { return n.tm.Begin() }

// Write writes key at the named local server under transaction t,
// joining the server (and, transitively, this site's transaction
// manager) to the family. A distributed transaction is built by
// calling Write at each participant site for the same t, then
// AddSites + Commit at the coordinator.
func (n *RealNode) Write(srv string, t TID, key string, val []byte) error {
	s := n.servers[srv]
	if s == nil {
		return fmt.Errorf("camelot: no server %q at site %d", srv, n.cfg.Site)
	}
	return s.Write(t, tid.TID{}, key, val)
}

// Read reads key at the named local server under transaction t.
func (n *RealNode) Read(srv string, t TID, key string) ([]byte, error) {
	s := n.servers[srv]
	if s == nil {
		return nil, fmt.Errorf("camelot: no server %q at site %d", srv, n.cfg.Site)
	}
	return s.Read(t, tid.TID{}, key)
}

// AddSites declares remote participant sites to the coordinator; call
// at the coordinating site before Commit.
func (n *RealNode) AddSites(t TID, sites []SiteID) { n.tm.AddSites(t, sites) }

// Commit runs the commitment protocol selected by opts for t.
func (n *RealNode) Commit(t TID, opts Options) (wire.Outcome, error) {
	return n.tm.Commit(t, opts)
}

// Abort aborts t.
func (n *RealNode) Abort(t TID) { n.tm.Abort(t) }

// Peek returns the committed value of key at the named server without
// a transaction (the oracle's presence check).
func (n *RealNode) Peek(srv string, key string) ([]byte, bool) {
	s := n.servers[srv]
	if s == nil {
		return nil, false
	}
	return s.Peek(key)
}

// ShardMap returns the site's shard map, or nil when the data tier is
// unsharded.
func (n *RealNode) ShardMap() *shardmap.Map { return n.cfg.ShardMap }

// WriteKey routes key to its local shard server and writes it under
// transaction t. Requires a ShardMap; a key this site does not cover
// fails with server.ErrNoShard or server.ErrWrongSite.
func (n *RealNode) WriteKey(t TID, key string, val []byte) error {
	if n.set == nil {
		return fmt.Errorf("camelot: site %d is not sharded", n.cfg.Site)
	}
	return n.set.Write(t, tid.TID{}, key, val)
}

// ReadKey routes key to its local shard server and reads it under t.
func (n *RealNode) ReadKey(t TID, key string) ([]byte, error) {
	if n.set == nil {
		return nil, fmt.Errorf("camelot: site %d is not sharded", n.cfg.Site)
	}
	return n.set.Read(t, tid.TID{}, key)
}

// PeekKey returns the committed value of key from its local shard
// server without a transaction; the error is the routing verdict.
func (n *RealNode) PeekKey(key string) ([]byte, bool, error) {
	if n.set == nil {
		return nil, false, fmt.Errorf("camelot: site %d is not sharded", n.cfg.Site)
	}
	return n.set.Peek(key)
}

// OutcomeOf returns this site's resolved outcome for a family, or
// OutcomeUnknown if it holds none.
func (n *RealNode) OutcomeOf(f tid.FamilyID) wire.Outcome {
	return n.tm.OutcomeOf(f)
}

// LogStats reports the write-ahead log's counters: records appended
// and device writes actually issued (group commit coalesces many
// appends into one write). Performance reports charge the commit
// protocols by these — the paper's log-force budget, measured.
func (n *RealNode) LogStats() (appends, deviceWrites int) {
	return n.log.Appends(), n.log.DeviceWrites()
}

// Close stops the site: transaction manager, log, and socket. The WAL
// file survives for the next incarnation's Recover.
func (n *RealNode) Close() error {
	n.tm.Close()
	n.log.Close()
	err := n.store.Close()
	if cerr := n.peer.Close(); err == nil {
		err = cerr
	}
	return err
}

// ServerNames returns the configured data-server names in order.
func (n *RealNode) ServerNames() []string { return det.SortedKeys(n.servers) }
