package camelot

import (
	"fmt"
	"testing"
	"time"

	"camelot/internal/sim"
	"camelot/internal/tid"
	"camelot/internal/trace"
	"camelot/internal/wire"
)

func TestCheckpointTruncatesAndRecoverySurvives(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		n := c.Node(1)
		for i := 0; i < 5; i++ {
			seed(t, n, "srv1", fmt.Sprintf("pre%d", i), "v")
		}
		k.Sleep(100 * time.Millisecond) // lazy records reach the disk
		cut, err := n.Checkpoint()
		if err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		if cut == 0 {
			t.Fatal("checkpoint truncated nothing despite resolved history")
		}
		recs, _ := n.Log().Records()
		if len(recs) != 0 {
			t.Fatalf("%d records left after quiescent checkpoint", len(recs))
		}
		// Post-checkpoint transactions land in the fresh tail.
		seed(t, n, "srv1", "post", "v")
		// Crash and recover: data from before AND after the checkpoint
		// must survive.
		n.Crash()
		n.Recover()
		k.Sleep(200 * time.Millisecond)
		for i := 0; i < 5; i++ {
			if _, ok := n.Server("srv1").Peek(fmt.Sprintf("pre%d", i)); !ok {
				t.Errorf("pre-checkpoint key pre%d lost", i)
			}
		}
		if _, ok := n.Server("srv1").Peek("post"); !ok {
			t.Error("post-checkpoint key lost")
		}
		// New transactions after recovery still work (family floor and
		// resolved memory intact).
		seed(t, n, "srv1", "after-recovery", "v")
	})
}

func TestCheckpointWithInFlightDistributedTransaction(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		seed(t, c.Node(1), "srv1", "old", "v")
		k.Sleep(100 * time.Millisecond)

		// Start a distributed transaction and checkpoint the
		// subordinate while it is prepared.
		tx, _ := c.Node(1).Begin()
		tx.Write("srv1", "x", []byte("1")) //nolint:errcheck
		tx.Write("srv2", "y", []byte("2")) //nolint:errcheck
		done := false
		k.Go("commit", func() {
			tx.Commit() //nolint:errcheck
			done = true
		})
		k.Sleep(3 * time.Millisecond) // sub prepared, outcome pending
		if _, err := c.Node(2).Checkpoint(); err != nil {
			t.Fatalf("checkpoint with in-doubt txn: %v", err)
		}
		// The in-doubt transaction's records must have been retained:
		// crash the sub and let recovery + the protocol finish.
		c.Node(2).Crash()
		c.Node(2).Recover()
		k.Sleep(3 * time.Second)
		if !done {
			t.Fatal("commit never resolved after sub checkpoint+crash")
		}
		k.Sleep(time.Second)
		if v, ok := c.Node(2).Server("srv2").Peek("y"); ok && string(v) != "2" {
			t.Errorf("y = %q after recovery", v)
		}
	})
}

// TestTruncatedResolvedAnswersInquiryFromImage pins the resolved-map
// truncation contract: after a checkpoint absorbs a committed
// family's outcome, TruncateResolved drops it from the TM's in-memory
// map (Stats.ResolvedRetained goes to zero) — yet a late presumed-
// abort inquiry for that family must still be answered COMMIT,
// through the PageStore image backstop. Answering ABORT here would
// corrupt a subordinate.
func TestTruncatedResolvedAnswersInquiryFromImage(t *testing.T) {
	cfg := fastConfig()
	cfg.Trace = true
	runSim(t, cfg, func(k *sim.Kernel, c *Cluster) {
		tx, _ := c.Node(1).Begin()
		tx.Write("srv1", "x", []byte("1")) //nolint:errcheck
		tx.Write("srv2", "y", []byte("2")) //nolint:errcheck
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
		fam := tx.ID().Family
		k.Sleep(500 * time.Millisecond) // acks drain; coordinator forgets

		if got := c.Node(1).TM().Stats().ResolvedRetained; got == 0 {
			t.Fatal("resolved outcome not retained before checkpoint")
		}
		if cut, err := c.Node(1).Checkpoint(); err != nil || cut == 0 {
			t.Fatalf("Checkpoint = %d, %v", cut, err)
		}
		if got := c.Node(1).TM().Stats().ResolvedRetained; got != 0 {
			t.Fatalf("ResolvedRetained = %d after checkpoint, want 0 (truncation)", got)
		}

		// Inject the late inquiry a recovering subordinate would send.
		mark := len(c.Trace().Events())
		c.Network().Send(2, 1, &wire.Msg{Kind: wire.KInquire, TID: tid.Top(fam), From: 2, To: 1})
		k.Sleep(100 * time.Millisecond)

		var answered bool
		for _, ev := range c.Trace().Events()[mark:] {
			if ev.Kind == trace.EvMsgSend && ev.Site == 1 && ev.Peer == 2 {
				switch ev.Info {
				case "COMMIT":
					answered = true
				case "ABORT":
					t.Fatal("truncated committed family answered ABORT: image backstop not consulted")
				}
			}
		}
		if !answered {
			t.Fatal("inquiry for truncated family never answered")
		}
	})
}

func TestInquiryAnsweredFromCheckpointAbsorbedOutcome(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		// Commit a distributed transaction fully, checkpoint the
		// coordinator (absorbing its COMMIT/END records), crash and
		// recover it, and confirm a new distributed transaction works
		// and the resolved-outcome memory survived the truncation.
		tx, _ := c.Node(1).Begin()
		tx.Write("srv1", "x", []byte("1")) //nolint:errcheck
		tx.Write("srv2", "y", []byte("2")) //nolint:errcheck
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
		k.Sleep(500 * time.Millisecond) // acks drain; END logged
		cut, err := c.Node(1).Checkpoint()
		if err != nil || cut == 0 {
			t.Fatalf("Checkpoint = %d, %v", cut, err)
		}
		c.Node(1).Crash()
		c.Node(1).Recover()
		k.Sleep(200 * time.Millisecond)
		if v, _ := c.Node(1).Server("srv1").Peek("x"); string(v) != "1" {
			t.Errorf("x = %q after checkpointed recovery", v)
		}
		tx2, _ := c.Node(1).Begin()
		tx2.Write("srv1", "x", []byte("3")) //nolint:errcheck
		tx2.Write("srv2", "y", []byte("4")) //nolint:errcheck
		if err := tx2.Commit(); err != nil {
			t.Fatalf("post-recovery distributed commit: %v", err)
		}
	})
}
