// Package camelot is the public face of this reproduction of the
// Camelot distributed transaction facility, as studied in "Analysis
// of Transaction Management Performance" (Duchamp, SOSP 1989).
//
// A Cluster connects Nodes (sites); each Node runs the four Camelot
// processes — transaction manager, communication manager, disk
// manager (the log), and recovery — plus any number of data servers.
// Applications begin transactions at a node, operate on servers by
// name anywhere in the cluster, and commit with either two-phase
// commit (with or without the delayed-commit optimization) or the
// non-blocking three-phase protocol:
//
//	cluster := camelot.NewCluster(rt.Real(), camelot.DefaultConfig())
//	n1 := cluster.AddNode(1)
//	n1.AddServer("bank")
//	tx, _ := n1.Begin()
//	tx.Write("bank", "alice", []byte("100"))
//	err := tx.Commit()
//
// For deterministic experiments, pass a sim.Kernel instead of
// rt.Real() and drive it with Run: all of the paper's latency and
// throughput studies in this repository run that way.
package camelot

import (
	"errors"
	"fmt"
	"time"

	"camelot/internal/commman"
	"camelot/internal/core"
	"camelot/internal/det"
	"camelot/internal/diskman"
	"camelot/internal/params"
	"camelot/internal/rt"
	"camelot/internal/server"
	"camelot/internal/shardmap"
	"camelot/internal/tid"
	"camelot/internal/trace"
	"camelot/internal/transport"
	"camelot/internal/wal"
	"camelot/internal/wire"
)

// Re-exported identifier types.
type (
	// SiteID names a site.
	SiteID = tid.SiteID
	// TID identifies a transaction.
	TID = tid.TID
)

// Errors surfaced by the public API.
var (
	// ErrAborted reports that commit ended in abort.
	ErrAborted = core.ErrAborted
	// ErrCrashed reports an operation on a crashed node.
	ErrCrashed = errors.New("camelot: node is crashed")
	// ErrNoShard reports a keyspace operation on a key no shard map
	// entry covers; re-exported from the data tier so clients classify
	// routing rejections with errors.Is.
	ErrNoShard = server.ErrNoShard
	// ErrWrongSite reports a keyspace operation routed to a site that
	// does not host the key's home shard.
	ErrWrongSite = server.ErrWrongSite
)

// Options selects the commitment protocol per transaction; see
// core.Options for field meanings.
type Options = core.Options

// Config tunes a cluster.
type Config struct {
	// Params is the primitive cost model; params.Paper() reproduces
	// the paper's testbed, params.Fast() is for functional tests.
	Params params.Params
	// Threads is the transaction-manager pool size per node.
	Threads int
	// GroupCommit enables log batching (§3.5).
	GroupCommit bool
	// LogFlushInterval bounds how long lazily written records stay
	// volatile.
	LogFlushInterval time.Duration
	// LockTimeout bounds data-server lock waits.
	LockTimeout time.Duration
	// RetryInterval, InquireInterval, PromotionTimeout, and
	// AckFlushInterval tune the transaction manager's timers.
	// RetryBackoffCap bounds the exponential backoff retransmits and
	// inquiries grow into under persistent faults; zero means 8×
	// RetryInterval (see core.Config.RetryBackoffCap).
	RetryInterval    time.Duration
	InquireInterval  time.Duration
	PromotionTimeout time.Duration
	AckFlushInterval time.Duration
	RetryBackoffCap  time.Duration
	// RPCTimeout bounds remote operation calls.
	RPCTimeout time.Duration
	// LossRate injects datagram loss for fault experiments.
	LossRate float64
	// Trace attaches a trace.Collector to the cluster, recording a
	// structured event timeline and per-site protocol counters; read
	// them back through Cluster.Trace. Off by default: the
	// uninstrumented path costs one nil check per hook.
	Trace bool
	// WrapStore, if non-nil, wraps each new node's stable log store.
	// The chaos explorer uses it to interpose a fault-injecting store
	// that tears or corrupts the k-th log write of a schedule.
	WrapStore func(site SiteID, s wal.Store) wal.Store
}

// DefaultConfig returns a cluster configuration with the paper's
// latency model, group commit on, and five transaction-manager
// threads per node.
func DefaultConfig() Config {
	return Config{
		Params:           params.Paper(),
		Threads:          5,
		GroupCommit:      true,
		LogFlushInterval: 100 * time.Millisecond,
		LockTimeout:      2 * time.Second,
		RetryInterval:    500 * time.Millisecond,
		InquireInterval:  time.Second,
		PromotionTimeout: time.Second,
		AckFlushInterval: 200 * time.Millisecond,
		RPCTimeout:       2 * time.Second,
	}
}

// Cluster is a set of Camelot sites sharing a network and a name
// service.
type Cluster struct {
	r     rt.Runtime
	cfg   Config
	net   *transport.Network
	names *commman.Names
	nodes map[SiteID]*Node
	tr    *trace.Collector
	// shards, when set, makes the cluster's keyspace API (Tx.WriteKey,
	// Tx.ReadKey) route by key; nil clusters are unsharded and
	// unaffected.
	shards *shardmap.Map
}

// NewRealtimeCluster creates a cluster on the ordinary Go runtime —
// wall-clock time, real goroutines. Experiments use NewCluster with a
// sim.Kernel instead, for deterministic virtual time.
func NewRealtimeCluster(cfg Config) *Cluster {
	return NewCluster(rt.Real(), cfg)
}

// NewCluster creates an empty cluster on the given runtime.
func NewCluster(r rt.Runtime, cfg Config) *Cluster {
	c := &Cluster{
		r:   r,
		cfg: cfg,
		net: transport.NewNetwork(r, transport.Config{
			Latency:   cfg.Params.Datagram,
			SendCycle: cfg.Params.SendCycle,
			Jitter:    cfg.Params.Jitter,
			LossRate:  cfg.LossRate,
		}),
		names: commman.NewNames(r),
		nodes: make(map[SiteID]*Node),
	}
	if cfg.Trace {
		c.tr = trace.New(r)
		c.net.SetTrace(c.tr)
	}
	return c
}

// Trace returns the cluster's trace collector, or nil when Config.Trace
// is off.
func (c *Cluster) Trace() *trace.Collector { return c.tr }

// Network exposes the transport for fault injection in tests and
// experiments.
func (c *Cluster) Network() *transport.Network { return c.net }

// AddNode creates and starts a site. IDs must be nonzero and unique.
func (c *Cluster) AddNode(id SiteID) *Node {
	if id == 0 {
		panic("camelot: site id 0 is reserved")
	}
	if _, dup := c.nodes[id]; dup {
		panic(fmt.Sprintf("camelot: duplicate site id %d", id))
	}
	var store wal.Store = wal.NewMemStore()
	if c.cfg.WrapStore != nil {
		store = c.cfg.WrapStore(id, store)
	}
	n := &Node{cluster: c, id: id, store: store, pages: diskman.NewPageStore()}
	n.start(nil)
	c.nodes[id] = n
	return n
}

// Node returns the site with the given id, or nil.
func (c *Cluster) Node(id SiteID) *Node {
	return c.nodes[id]
}

// SetShardMap installs the deployment's shard map, enabling the
// keyspace API. Call before AddShardServers on any node; every member
// of a deployment must install an Equal map.
func (c *Cluster) SetShardMap(m *shardmap.Map) { c.shards = m }

// ShardMap returns the cluster's shard map, or nil when unsharded.
func (c *Cluster) ShardMap() *shardmap.Map { return c.shards }

// Node is one Camelot site.
type Node struct {
	cluster *Cluster
	id      SiteID
	store   wal.Store
	pages   *diskman.PageStore
	kernel  *rt.CPU

	log     *wal.Log
	tm      *core.Manager
	comm    *commman.Manager
	servers map[string]*server.Server
	crashed bool
}

// start builds the site's processes around the (persistent) store.
// keepServers carries server names across a recovery.
func (n *Node) start(keepServers []string) {
	c := n.cluster
	n.crashed = false
	n.kernel = rt.NewCPU(c.r)
	n.log = wal.Open(c.r, n.store, wal.Config{
		GroupCommit:   c.cfg.GroupCommit,
		ForceLatency:  c.cfg.Params.LogForce,
		FlushInterval: c.cfg.LogFlushInterval,
		Site:          n.id,
		Trace:         c.tr,
	})
	n.tm = core.New(c.r, core.Config{
		Site:             n.id,
		Threads:          c.cfg.Threads,
		Params:           c.cfg.Params,
		Kernel:           n.kernel,
		RetryInterval:    c.cfg.RetryInterval,
		InquireInterval:  c.cfg.InquireInterval,
		PromotionTimeout: c.cfg.PromotionTimeout,
		AckFlushInterval: c.cfg.AckFlushInterval,
		RetryBackoffCap:  c.cfg.RetryBackoffCap,
		Trace:            c.tr,
	}, n.log, c.net)
	// Outcomes absorbed into the checkpoint image are truncated from
	// the TM's resolved memory; the image answers for them instead.
	n.tm.SetResolvedBackstop(n.pages.Outcome)
	n.comm = commman.New(c.r, n.id, c.net, c.names, n.tm, c.cfg.Params, n.kernel, c.cfg.RPCTimeout)
	n.servers = make(map[string]*server.Server)
	for _, name := range keepServers {
		n.addServer(name)
	}
	c.net.Register(n.id, func(d transport.Datagram) {
		switch p := d.Payload.(type) {
		case *wire.Msg:
			n.tm.Deliver(p)
		case *commman.Request:
			n.comm.HandleRequest(p)
		case *commman.Response:
			n.comm.HandleResponse(p)
		}
	})
}

// ID returns the node's site id.
func (n *Node) ID() SiteID { return n.id }

// TM exposes the transaction manager (for statistics).
func (n *Node) TM() *core.Manager { return n.tm }

// Log exposes the site log (for statistics).
func (n *Node) Log() *wal.Log { return n.log }

// Comm exposes the communication manager (for statistics and the RPC
// breakdown experiment).
func (n *Node) Comm() *commman.Manager { return n.comm }

// AddServer creates a data server on this node, reachable cluster-wide
// by name.
func (n *Node) AddServer(name string) *server.Server {
	return n.addServer(name)
}

func (n *Node) addServer(name string) *server.Server {
	s := server.New(n.cluster.r, name, n.tm, n.log, server.Config{
		LockTimeout: n.cluster.cfg.LockTimeout,
		Params:      n.cluster.cfg.Params,
		Kernel:      n.kernel,
	})
	n.servers[name] = s
	n.comm.RegisterServer(s)
	return s
}

// AddShardServers creates the data servers the cluster's shard map
// homes at this node — one per local shard, named by the map, each
// reachable cluster-wide. Requires SetShardMap first.
func (n *Node) AddShardServers() {
	m := n.cluster.shards
	if m == nil {
		panic("camelot: AddShardServers before SetShardMap")
	}
	for _, sh := range m.ShardsAt(n.id) {
		n.addServer(m.ServerOf(sh))
	}
}

// Server returns the named local server, or nil.
func (n *Node) Server(name string) *server.Server { return n.servers[name] }

// Begin starts a top-level transaction coordinated by this node
// (Figure 1 step 2).
func (n *Node) Begin() (*Tx, error) {
	if n.crashed {
		return nil, ErrCrashed
	}
	t, err := n.tm.Begin()
	if err != nil {
		return nil, err
	}
	return &Tx{node: n, id: t}, nil
}

// Crash stops the node abruptly: volatile state (buffered log
// records, lock tables, in-memory data) is lost; the stable store
// survives for Recover.
func (n *Node) Crash() {
	if n.crashed {
		return
	}
	n.crashed = true
	n.cluster.tr.Crash(n.id)
	n.cluster.net.SetDown(n.id, true)
	n.tm.Close()
	n.log.Close()
}

// Recover restarts a crashed node: the recovery process replays the
// log, reinstalls server state, re-acquires in-doubt locks, and
// resumes unresolved commitments. If the log is unreadable — mid-log
// corruption rather than a clean torn tail — recovery refuses to
// guess: the node stays crashed and the error says why.
func (n *Node) Recover() error {
	if !n.crashed {
		return nil
	}
	// Sorted so servers restart in the same order every replay.
	n.start(det.SortedKeys(n.servers))
	if err := recoverNode(n); err != nil {
		// Fail stop: a site must not serve traffic from a log it
		// cannot trust.
		n.crashed = true
		n.tm.Close()
		n.log.Close()
		n.cluster.net.SetDown(n.id, true)
		return err
	}
	n.cluster.tr.Recover(n.id)
	n.cluster.net.SetDown(n.id, false)
	return nil
}

// Crashed reports whether the node is down.
func (n *Node) Crashed() bool { return n.crashed }

// Checkpoint runs the disk manager's checkpoint: the durable log is
// materialized into the page image and the absorbed prefix truncated,
// bounding how much history the next recovery replays. It returns the
// number of log records truncated.
func (n *Node) Checkpoint() (int, error) {
	if n.crashed {
		return 0, ErrCrashed
	}
	cut, err := diskman.Checkpoint(n.id, n.log, n.pages)
	if err != nil {
		return cut, err
	}
	n.cluster.tr.Checkpoint(n.id, cut)
	// The image now remembers every absorbed outcome durably; drop
	// them from the TM's unbounded in-memory map (Stats.ResolvedRetained
	// measures what stays). Inquiries for truncated families fall
	// through to the PageStore backstop installed in start.
	n.tm.TruncateResolved(n.pages.AbsorbedFamilies())
	return cut, nil
}
