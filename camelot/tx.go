package camelot

import (
	"fmt"

	"camelot/internal/commman"
	"camelot/internal/rt"
	"camelot/internal/server"
	"camelot/internal/tid"
	"camelot/internal/wire"
)

// Tx is a handle on one transaction (top-level or nested). Operations
// name servers; the name service locates them, local calls go
// directly, and remote calls travel the communication-manager path
// whose responses carry the site lists the commit protocols need.
type Tx struct {
	node   *Node
	id     TID
	parent TID
}

// ID returns the transaction identifier.
func (tx *Tx) ID() TID { return tx.id }

// Read returns the named server's value for key under a shared lock.
func (tx *Tx) Read(serverName, key string) ([]byte, error) {
	if tx.node.crashed {
		return nil, ErrCrashed
	}
	if srv, ok := tx.node.comm.LocalServer(serverName); ok {
		tx.chargeLocalOp()
		return srv.Read(tx.id, tx.parent, key)
	}
	site, ok := tx.node.cluster.names.Lookup(serverName)
	if !ok {
		return nil, fmt.Errorf("camelot: unknown server %q", serverName)
	}
	return tx.node.comm.Call(site, &commman.Request{
		TID: tx.id, Parent: tx.parent, Server: serverName, Op: commman.OpRead, Key: key,
	})
}

// Write sets the named server's value for key under an exclusive
// lock; the old and new values are reported to the site's log.
func (tx *Tx) Write(serverName, key string, value []byte) error {
	if tx.node.crashed {
		return ErrCrashed
	}
	if srv, ok := tx.node.comm.LocalServer(serverName); ok {
		tx.chargeLocalOp()
		return srv.Write(tx.id, tx.parent, key, value)
	}
	site, ok := tx.node.cluster.names.Lookup(serverName)
	if !ok {
		return fmt.Errorf("camelot: unknown server %q", serverName)
	}
	_, err := tx.node.comm.Call(site, &commman.Request{
		TID: tx.id, Parent: tx.parent, Server: serverName, Op: commman.OpWrite,
		Key: key, Value: value,
	})
	return err
}

// routeKey resolves key to its shard server through the cluster's
// shard map, rejecting keys no shard covers with the data tier's
// typed error so callers never wait on a lookup that cannot succeed.
func (tx *Tx) routeKey(key string) (string, error) {
	m := tx.node.cluster.shards
	if m == nil {
		return "", fmt.Errorf("camelot: cluster has no shard map; use Write/Read with a server name")
	}
	if m.SiteOf(key) == 0 {
		return "", fmt.Errorf("%w: key %q (shard %d of %d)",
			server.ErrNoShard, key, m.ShardOf(key), m.Shards)
	}
	return m.ServerFor(key), nil
}

// WriteKey writes key wherever the cluster's shard map homes it: the
// operation is routed to the key's shard server (local or remote),
// and the remote path's response joins that site to the transaction's
// participant set, so the commit instance covers exactly the shards
// the family touched.
func (tx *Tx) WriteKey(key string, value []byte) error {
	srv, err := tx.routeKey(key)
	if err != nil {
		return err
	}
	return tx.Write(srv, key, value)
}

// ReadKey reads key from its shard server under a shared lock.
func (tx *Tx) ReadKey(key string) ([]byte, error) {
	srv, err := tx.routeKey(key)
	if err != nil {
		return nil, err
	}
	return tx.Read(srv, key)
}

// Child begins a nested transaction under tx (Moss model): its
// effects become permanent only if every ancestor up to the top
// commits, and aborting it does not disturb the rest of the family.
func (tx *Tx) Child() (*Tx, error) {
	if tx.node.crashed {
		return nil, ErrCrashed
	}
	c, err := tx.node.tm.BeginChild(tx.id)
	if err != nil {
		return nil, err
	}
	return &Tx{node: tx.node, id: c, parent: tx.id}, nil
}

// Commit commits with default options: optimized presumed-abort
// two-phase commit (delayed subordinate commit record, piggybacked
// acks).
func (tx *Tx) Commit() error {
	return tx.CommitWith(Options{})
}

// CommitWith commits with explicit protocol options — the
// commit-transaction call's protocol argument (§3.3).
func (tx *Tx) CommitWith(opts Options) error {
	if tx.node.crashed {
		return ErrCrashed
	}
	_, err := tx.node.tm.Commit(tx.id, opts)
	return err
}

// Abort aborts the transaction (top-level: the abort protocol;
// nested: subtree undo).
func (tx *Tx) Abort() error {
	if tx.node.crashed {
		return ErrCrashed
	}
	return tx.node.tm.Abort(tx.id)
}

// chargeLocalOp models the application→server IPC of a local
// operation call (Figure 1 step 3).
func (tx *Tx) chargeLocalOp() {
	p := tx.node.cluster.cfg.Params
	rt.Charge(tx.node.cluster.r, tx.node.kernel, p.LocalIPCServer+p.KernelCPU)
	tx.node.cluster.tr.IPC(tx.node.id)
}

// Outcome re-exports the protocol outcome type.
type Outcome = wire.Outcome

// Outcome values.
const (
	OutcomeUnknown = wire.OutcomeUnknown
	OutcomeCommit  = wire.OutcomeCommit
	OutcomeAbort   = wire.OutcomeAbort
)

// ensure tid is referenced for the type aliases above.
var _ = tid.TID{}
