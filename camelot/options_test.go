package camelot

import (
	"testing"
	"time"

	"camelot/internal/sim"
)

func TestMulticastOptionCommits(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		tx, _ := c.Node(1).Begin()
		tx.Write("srv1", "x", []byte("1")) //nolint:errcheck
		tx.Write("srv2", "y", []byte("2")) //nolint:errcheck
		tx.Write("srv3", "z", []byte("3")) //nolint:errcheck
		if err := tx.CommitWith(Options{Multicast: true, NonBlocking: true}); err != nil {
			t.Fatalf("multicast NB commit: %v", err)
		}
		k.Sleep(500 * time.Millisecond)
		for id := SiteID(2); id <= 3; id++ {
			key := []string{"", "", "y", "z"}[id]
			if _, ok := c.Node(id).Server(srvName(id)).Peek(key); !ok {
				t.Errorf("site %d missing %s", id, key)
			}
		}
	})
}

func TestDisableReadOnlyOptThroughFacade(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		seed(t, c.Node(2), "srv2", "y", "1")
		before := c.Node(2).Log().Appends()
		tx, _ := c.Node(1).Begin()
		tx.Write("srv1", "x", []byte("1")) //nolint:errcheck
		tx.Read("srv2", "y")               //nolint:errcheck
		if err := tx.CommitWith(Options{DisableReadOnlyOpt: true}); err != nil {
			t.Fatalf("commit: %v", err)
		}
		k.Sleep(500 * time.Millisecond)
		// With the ablation flag, the read-only sub prepares on disk.
		if got := c.Node(2).Log().Appends(); got == before {
			t.Error("DisableReadOnlyOpt did not force the subordinate through the update path")
		}
	})
}

func TestStatsExposedThroughFacade(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		n := c.Node(1)
		seed(t, n, "srv1", "a", "1")
		st := n.TM().Stats()
		if st.Begun != 1 || st.Committed != 1 {
			t.Errorf("Stats = %+v, want 1 begun / 1 committed", st)
		}
		if n.TM().Site() != 1 {
			t.Errorf("Site() = %v", n.TM().Site())
		}
		sent, delivered, _ := c.Network().Stats()
		_ = sent
		_ = delivered
	})
}

func TestSequentialTransactionsReuseLocksCleanly(t *testing.T) {
	// A long serial run on one element: every commit must release in
	// time for the next transaction; any lock leak shows up as a
	// timeout.
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		for i := 0; i < 40; i++ {
			tx, err := c.Node(1).Begin()
			if err != nil {
				t.Fatalf("begin %d: %v", i, err)
			}
			if err := tx.Write("srv1", "hot", []byte{byte(i)}); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			if err := tx.Write("srv2", "hot", []byte{byte(i)}); err != nil {
				t.Fatalf("remote write %d: %v", i, err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		}
	})
}

func TestOperationsOnCrashedNodeFail(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		n := c.Node(1)
		tx, _ := n.Begin()
		n.Crash()
		if _, err := n.Begin(); err == nil {
			t.Error("Begin on crashed node succeeded")
		}
		if err := tx.Write("srv1", "a", []byte("1")); err == nil {
			t.Error("Write on crashed node succeeded")
		}
		if err := tx.Commit(); err == nil {
			t.Error("Commit on crashed node succeeded")
		}
		if _, err := tx.Child(); err == nil {
			t.Error("Child on crashed node succeeded")
		}
		n.Recover()
		if _, err := n.Begin(); err != nil {
			t.Errorf("Begin after recovery: %v", err)
		}
	})
}

func TestUnknownServerNameFails(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		tx, _ := c.Node(1).Begin()
		if err := tx.Write("no-such-server", "k", []byte("v")); err == nil {
			t.Error("write to unknown server succeeded")
		}
		if _, err := tx.Read("no-such-server", "k"); err == nil {
			t.Error("read from unknown server succeeded")
		}
		tx.Abort() //nolint:errcheck
	})
}

func TestDoubleCrashAndRecoverIsIdempotent(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		n := c.Node(1)
		seed(t, n, "srv1", "a", "v")
		n.Crash()
		n.Crash() // second crash is a no-op
		n.Recover()
		n.Recover() // second recover is a no-op
		k.Sleep(100 * time.Millisecond)
		if v, _ := n.Server("srv1").Peek("a"); string(v) != "v" {
			t.Errorf("a = %q after double crash/recover", v)
		}
	})
}
