package camelot

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"camelot/internal/params"
	"camelot/internal/sim"
)

// fastConfig returns a functional-test configuration: tiny latencies,
// short timers.
func fastConfig() Config {
	return Config{
		Params:           params.Fast(),
		Threads:          5,
		GroupCommit:      true,
		LogFlushInterval: 20 * time.Millisecond,
		LockTimeout:      500 * time.Millisecond,
		RetryInterval:    50 * time.Millisecond,
		InquireInterval:  50 * time.Millisecond,
		PromotionTimeout: 100 * time.Millisecond,
		AckFlushInterval: 20 * time.Millisecond,
		RPCTimeout:       200 * time.Millisecond,
	}
}

// runSim executes fn inside a deterministic simulation with a
// three-node cluster (sites 1–3, one server per site named srvN) and
// fails the test on simulated deadlock.
func runSim(t *testing.T, cfg Config, fn func(k *sim.Kernel, c *Cluster)) {
	t.Helper()
	k := sim.New(1)
	c := NewCluster(k, cfg)
	for id := SiteID(1); id <= 3; id++ {
		n := c.AddNode(id)
		n.AddServer(srvName(id))
	}
	k.Go("test", func() {
		fn(k, c)
		k.Stop() // nothing left but periodic timers
	})
	k.RunUntil(10 * time.Minute)
	if msg := k.Deadlocked(); msg != "" {
		t.Fatal(msg)
	}
}

func srvName(id SiteID) string {
	return string([]byte{'s', 'r', 'v', byte('0' + id)})
}

func TestLocalCommit(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		n := c.Node(1)
		tx, err := n.Begin()
		if err != nil {
			t.Fatalf("Begin: %v", err)
		}
		if err := tx.Write("srv1", "a", []byte("1")); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		v, ok := n.Server("srv1").Peek("a")
		if !ok || !bytes.Equal(v, []byte("1")) {
			t.Fatalf("after commit, a = %q (%v)", v, ok)
		}
	})
}

func TestLocalAbortUndoesUpdates(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		n := c.Node(1)
		seed(t, n, "srv1", "a", "old")
		tx, _ := n.Begin()
		tx.Write("srv1", "a", []byte("new"))
		if err := tx.Abort(); err != nil {
			t.Fatalf("Abort: %v", err)
		}
		v, _ := n.Server("srv1").Peek("a")
		if !bytes.Equal(v, []byte("old")) {
			t.Fatalf("after abort, a = %q, want \"old\"", v)
		}
	})
}

// seed commits a single write so later transactions have data.
func seed(t *testing.T, n *Node, srv, key, val string) {
	t.Helper()
	tx, err := n.Begin()
	if err != nil {
		t.Fatalf("seed begin: %v", err)
	}
	if err := tx.Write(srv, key, []byte(val)); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("seed commit: %v", err)
	}
}

func TestLocalReadCommittedIsolation(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		n := c.Node(1)
		seed(t, n, "srv1", "a", "1")
		tx, _ := n.Begin()
		v, err := tx.Read("srv1", "a")
		if err != nil || string(v) != "1" {
			t.Fatalf("Read = %q, %v", v, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("read-only commit: %v", err)
		}
	})
}

func TestReadOnlyCommitWritesNoLogRecords(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		n := c.Node(1)
		seed(t, n, "srv1", "a", "1")
		before := n.Log().Appends()
		tx, _ := n.Begin()
		tx.Read("srv1", "a")
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if got := n.Log().Appends(); got != before {
			t.Fatalf("read-only commit appended %d log records", got-before)
		}
	})
}

func TestDistributedCommitTwoPhase(t *testing.T) {
	for _, opts := range []Options{
		{},                     // optimized
		{ForceSubCommit: true}, // semi-optimized
		{ForceSubCommit: true, ImmediateAck: true}, // unoptimized
		{Multicast: true},
	} {
		opts := opts
		runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
			tx, _ := c.Node(1).Begin()
			if err := tx.Write("srv1", "x", []byte("1")); err != nil {
				t.Fatalf("local write: %v", err)
			}
			if err := tx.Write("srv2", "y", []byte("2")); err != nil {
				t.Fatalf("remote write: %v", err)
			}
			if err := tx.Write("srv3", "z", []byte("3")); err != nil {
				t.Fatalf("remote write: %v", err)
			}
			if err := tx.CommitWith(opts); err != nil {
				t.Fatalf("CommitWith(%+v): %v", opts, err)
			}
			k.Sleep(500 * time.Millisecond) // let subs apply + acks drain
			for id := SiteID(1); id <= 3; id++ {
				key := []string{"", "x", "y", "z"}[id]
				want := []string{"", "1", "2", "3"}[id]
				v, ok := c.Node(id).Server(srvName(id)).Peek(key)
				if !ok || string(v) != want {
					t.Errorf("site %d: %s = %q (%v), want %q", id, key, v, ok, want)
				}
			}
			// The coordinator must eventually forget: acks received.
			s := c.Node(1).TM().Stats()
			if s.Committed != 1 {
				t.Errorf("coordinator Committed = %d, want 1", s.Committed)
			}
		})
	}
}

func TestDistributedAbortUndoesEverywhere(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		seed(t, c.Node(2), "srv2", "y", "old")
		tx, _ := c.Node(1).Begin()
		tx.Write("srv1", "x", []byte("new"))
		tx.Write("srv2", "y", []byte("new"))
		if err := tx.Abort(); err != nil {
			t.Fatalf("Abort: %v", err)
		}
		k.Sleep(500 * time.Millisecond)
		if _, ok := c.Node(1).Server("srv1").Peek("x"); ok {
			t.Error("site 1 kept aborted insert")
		}
		v, _ := c.Node(2).Server("srv2").Peek("y")
		if string(v) != "old" {
			t.Errorf("site 2: y = %q after abort, want \"old\"", v)
		}
	})
}

func TestDistributedReadOnlySitesSkipPhaseTwo(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		seed(t, c.Node(2), "srv2", "y", "1")
		before := c.Node(2).Log().Appends()
		tx, _ := c.Node(1).Begin()
		tx.Write("srv1", "x", []byte("1")) // update at coordinator
		if _, err := tx.Read("srv2", "y"); err != nil {
			t.Fatalf("remote read: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		k.Sleep(500 * time.Millisecond)
		// The read-only subordinate wrote nothing to its log.
		if got := c.Node(2).Log().Appends(); got != before {
			t.Errorf("read-only subordinate appended %d records", got-before)
		}
	})
}

func TestFullyReadOnlyDistributedCommit(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		seed(t, c.Node(1), "srv1", "x", "1")
		seed(t, c.Node(2), "srv2", "y", "1")
		a1, a2 := c.Node(1).Log().Appends(), c.Node(2).Log().Appends()
		tx, _ := c.Node(1).Begin()
		tx.Read("srv1", "x")
		tx.Read("srv2", "y")
		if err := tx.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		k.Sleep(300 * time.Millisecond)
		if c.Node(1).Log().Appends() != a1 || c.Node(2).Log().Appends() != a2 {
			t.Error("fully read-only distributed commit wrote log records")
		}
	})
}

func TestLockConflictAcrossTransactions(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		n := c.Node(1)
		seed(t, n, "srv1", "a", "0")
		tx1, _ := n.Begin()
		tx1.Write("srv1", "a", []byte("1"))
		tx2, _ := n.Begin()
		// tx2 must block until tx1 commits, then see its value.
		var v2 []byte
		var err2 error
		done := false
		k.Go("tx2", func() {
			v2, err2 = tx2.Read("srv1", "a")
			done = true
		})
		k.Sleep(50 * time.Millisecond)
		if done {
			t.Error("conflicting read completed while lock held")
		}
		if err := tx1.Commit(); err != nil {
			t.Fatalf("tx1 commit: %v", err)
		}
		k.Sleep(100 * time.Millisecond)
		if !done {
			t.Fatal("tx2 still blocked after tx1 committed")
		}
		if err2 != nil || string(v2) != "1" {
			t.Fatalf("tx2 read = %q, %v; want \"1\"", v2, err2)
		}
		tx2.Commit()
	})
}

func TestNonBlockingCommit(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		tx, _ := c.Node(1).Begin()
		tx.Write("srv1", "x", []byte("1"))
		tx.Write("srv2", "y", []byte("2"))
		tx.Write("srv3", "z", []byte("3"))
		if err := tx.CommitWith(Options{NonBlocking: true}); err != nil {
			t.Fatalf("non-blocking commit: %v", err)
		}
		k.Sleep(500 * time.Millisecond)
		for id := SiteID(1); id <= 3; id++ {
			key := []string{"", "x", "y", "z"}[id]
			if v, ok := c.Node(id).Server(srvName(id)).Peek(key); !ok {
				t.Errorf("site %d missing %s after NB commit (%q)", id, key, v)
			}
		}
	})
}

func TestNonBlockingReadOnly(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		seed(t, c.Node(2), "srv2", "y", "1")
		before := c.Node(2).Log().Appends()
		tx, _ := c.Node(1).Begin()
		tx.Write("srv1", "x", []byte("1"))
		tx.Read("srv2", "y")
		if err := tx.CommitWith(Options{NonBlocking: true}); err != nil {
			t.Fatalf("NB commit: %v", err)
		}
		k.Sleep(500 * time.Millisecond)
		// Read-only subordinate: one round of messages, no records —
		// unless it was drafted as a quorum filler, which with N=2
		// participants (Qc=2) it is. Site 2 being the only
		// subordinate, it must hold the replicated intent.
		if got := c.Node(2).Log().Appends(); got == before {
			t.Log("read-only sub wrote no records (not needed for quorum)")
		}
	})
}

func TestNestedCommitMergesIntoParent(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		n := c.Node(1)
		parent, _ := n.Begin()
		parent.Write("srv1", "a", []byte("p"))
		child, err := parent.Child()
		if err != nil {
			t.Fatalf("Child: %v", err)
		}
		child.Write("srv1", "b", []byte("c"))
		if err := child.Commit(); err != nil {
			t.Fatalf("child commit: %v", err)
		}
		// Parent can now touch the child's data (inherited lock).
		if err := parent.Write("srv1", "b", []byte("p2")); err != nil {
			t.Fatalf("parent write after inheritance: %v", err)
		}
		if err := parent.Commit(); err != nil {
			t.Fatalf("parent commit: %v", err)
		}
		v, _ := n.Server("srv1").Peek("b")
		if string(v) != "p2" {
			t.Fatalf("b = %q, want \"p2\"", v)
		}
	})
}

func TestNestedAbortDoesNotKillParent(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		n := c.Node(1)
		parent, _ := n.Begin()
		parent.Write("srv1", "a", []byte("p"))
		child, _ := parent.Child()
		child.Write("srv1", "b", []byte("c"))
		if err := child.Abort(); err != nil {
			t.Fatalf("child abort: %v", err)
		}
		if err := parent.Commit(); err != nil {
			t.Fatalf("parent commit after child abort: %v", err)
		}
		if v, _ := n.Server("srv1").Peek("a"); string(v) != "p" {
			t.Errorf("a = %q, want \"p\"", v)
		}
		if _, ok := n.Server("srv1").Peek("b"); ok {
			t.Error("aborted child's write survived")
		}
	})
}

func TestNestedDistributedChildAbort(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		seed(t, c.Node(2), "srv2", "y", "old")
		parent, _ := c.Node(1).Begin()
		parent.Write("srv1", "x", []byte("p"))
		child, _ := parent.Child()
		if err := child.Write("srv2", "y", []byte("c")); err != nil {
			t.Fatalf("child remote write: %v", err)
		}
		if err := child.Abort(); err != nil {
			t.Fatalf("child abort: %v", err)
		}
		k.Sleep(100 * time.Millisecond) // child-abort datagram
		if err := parent.Commit(); err != nil {
			t.Fatalf("parent commit: %v", err)
		}
		k.Sleep(500 * time.Millisecond)
		v, _ := c.Node(2).Server("srv2").Peek("y")
		if string(v) != "old" {
			t.Errorf("y = %q after child abort + parent commit, want \"old\"", v)
		}
	})
}

func TestNestedDistributedChildCommit(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		parent, _ := c.Node(1).Begin()
		child, _ := parent.Child()
		if err := child.Write("srv2", "y", []byte("c")); err != nil {
			t.Fatalf("child remote write: %v", err)
		}
		if err := child.Commit(); err != nil {
			t.Fatalf("child commit: %v", err)
		}
		k.Sleep(100 * time.Millisecond)
		if err := parent.Commit(); err != nil {
			t.Fatalf("parent commit: %v", err)
		}
		k.Sleep(500 * time.Millisecond)
		v, ok := c.Node(2).Server("srv2").Peek("y")
		if !ok || string(v) != "c" {
			t.Errorf("y = %q (%v), want committed child value \"c\"", v, ok)
		}
	})
}

func TestCrashRecoveryLocal(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		n := c.Node(1)
		seed(t, n, "srv1", "a", "durable")
		// An uncommitted transaction in flight at crash time.
		tx, _ := n.Begin()
		tx.Write("srv1", "b", []byte("volatile"))
		n.Crash()
		n.Recover()
		k.Sleep(200 * time.Millisecond)
		v, ok := n.Server("srv1").Peek("a")
		if !ok || string(v) != "durable" {
			t.Errorf("a = %q (%v) after recovery, want \"durable\"", v, ok)
		}
		if _, ok := n.Server("srv1").Peek("b"); ok {
			t.Error("uncommitted write survived the crash")
		}
	})
}

func TestRPCTimeoutWhenRemoteDown(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		c.Node(2).Crash()
		tx, _ := c.Node(1).Begin()
		err := tx.Write("srv2", "y", []byte("1"))
		if err == nil {
			t.Fatal("write to crashed site succeeded")
		}
		if err := tx.Abort(); err != nil {
			t.Fatalf("abort after failed op: %v", err)
		}
	})
}

func TestCommitAfterRemoteNoVoteAborts(t *testing.T) {
	runSim(t, fastConfig(), func(k *sim.Kernel, c *Cluster) {
		seed(t, c.Node(2), "srv2", "y", "old")
		tx, _ := c.Node(1).Begin()
		tx.Write("srv1", "x", []byte("1"))
		tx.Write("srv2", "y", []byte("2"))
		// Crash site 2 after the operation but before commit: its
		// volatile updates vanish, so at prepare time it must vote No
		// (after recovery) and the transaction aborts.
		c.Node(2).Crash()
		c.Node(2).Recover()
		k.Sleep(100 * time.Millisecond)
		err := tx.Commit()
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("Commit = %v, want ErrAborted", err)
		}
		k.Sleep(300 * time.Millisecond)
		if v, _ := c.Node(2).Server("srv2").Peek("y"); string(v) != "old" {
			t.Errorf("y = %q, want \"old\"", v)
		}
	})
}
