package camelot

import (
	"bytes"
	"testing"
	"time"
)

// TestRealtimeClusterEndToEnd drives the public API on the ordinary
// Go runtime: true concurrency, wall-clock timers, no simulation.
func TestRealtimeClusterEndToEnd(t *testing.T) {
	cfg := fastConfig()
	c := NewRealtimeCluster(cfg)
	for id := SiteID(1); id <= 3; id++ {
		c.AddNode(id).AddServer(srvName(id))
	}

	// A distributed update under each protocol.
	for _, opts := range []Options{{}, {NonBlocking: true}} {
		tx, err := c.Node(1).Begin()
		if err != nil {
			t.Fatalf("Begin: %v", err)
		}
		if err := tx.Write("srv1", "x", []byte("1")); err != nil {
			t.Fatalf("local write: %v", err)
		}
		if err := tx.Write("srv2", "y", []byte("2")); err != nil {
			t.Fatalf("remote write: %v", err)
		}
		if err := tx.CommitWith(opts); err != nil {
			t.Fatalf("CommitWith(%+v): %v", opts, err)
		}
	}

	// The subordinate applies within a real-time deadline.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := c.Node(2).Server("srv2").Peek("y"); ok && bytes.Equal(v, []byte("2")) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if v, ok := c.Node(2).Server("srv2").Peek("y"); !ok || !bytes.Equal(v, []byte("2")) {
		t.Fatalf("subordinate state y = %q (%v)", v, ok)
	}

	// An abort, and crash/recovery, also work in real time.
	tx, _ := c.Node(1).Begin()
	tx.Write("srv1", "doomed", []byte("x")) //nolint:errcheck
	if err := tx.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	n := c.Node(3)
	seedTx, _ := n.Begin()
	seedTx.Write("srv3", "kept", []byte("v")) //nolint:errcheck
	if err := seedTx.Commit(); err != nil {
		t.Fatalf("commit at site3: %v", err)
	}
	n.Crash()
	n.Recover()
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := n.Server("srv3").Peek("kept"); ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("recovered node lost committed data")
}
