// Package camelotrepro is the root of a reproduction of "Analysis of
// Transaction Management Performance" (Dan Duchamp, SOSP 1989): the
// Camelot distributed transaction facility's transaction manager, its
// commitment protocols, and every experiment in the paper's
// evaluation.
//
// The public library lives in camelot/camelot; the substrates
// (simulation kernel, write-ahead log, lock manager, transports,
// communication manager, recovery) are under internal/. See README.md
// for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks
// in bench_test.go regenerate each table and figure; cmd/camelot-bench
// prints them in the paper's layout.
package camelotrepro
