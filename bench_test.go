package camelotrepro_test

// One benchmark per table and figure of the paper's evaluation (§4).
// Each runs the corresponding experiment from internal/exp inside the
// deterministic simulation and reports the headline quantity as a
// custom metric (ms of simulated latency, simulated TPS), so
// `go test -bench=.` regenerates the study end to end. The companion
// cmd/camelot-bench prints the full tables in the paper's layout.

import (
	"fmt"
	"os"
	"testing"
	"time"

	"camelot/camelot"
	"camelot/internal/exp"
	"camelot/internal/params"
)

// --- Table 1: primitive benchmarks of the host ---

func BenchmarkTable1_ProcedureCall(b *testing.B) {
	var sink int
	arg := [32]byte{1, 31: 7}
	for i := 0; i < b.N; i++ {
		sink += len(arg) // inlining-resistant work lives in exp.Table1
	}
	_ = sink
}

func BenchmarkTable1_DataCopy1KB(b *testing.B) {
	src := make([]byte, 1024)
	dst := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		copy(dst, src)
	}
}

func BenchmarkTable1_KernelCallGetpid(b *testing.B) {
	var pid int
	for i := 0; i < b.N; i++ {
		pid = os.Getpid()
	}
	_ = pid
}

func BenchmarkTable1_LocalMessage(b *testing.B) {
	ch := make(chan int, 1)
	for i := 0; i < b.N; i++ {
		ch <- i
		<-ch
	}
}

func BenchmarkTable1_ContextSwitch(b *testing.B) {
	ping := make(chan int)
	pong := make(chan int)
	go func() {
		for range ping {
			pong <- 1
		}
		close(pong)
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ping <- 1
		<-pong
	}
	close(ping)
}

func BenchmarkTable1_SyncFileWrite(b *testing.B) {
	f, err := os.CreateTemp(b.TempDir(), "wal")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	block := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(block, 0); err != nil {
			b.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: simulated Camelot primitives ---

func BenchmarkTable2_Primitives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Table2(params.Paper())
	}
}

// --- Table 3: static vs empirical breakdown ---

func BenchmarkTable3_Breakdown(b *testing.B) {
	var lastMs float64
	for i := 0; i < b.N; i++ {
		res := exp.MeasureLatency(exp.LatencySpec{
			Subs: 0, Trials: 5, Params: params.Paper(),
		})
		lastMs = res.Total.Mean()
	}
	b.ReportMetric(lastMs, "simms/local-update")
}

// --- Figure 1: transaction control flow ---

func BenchmarkFigure1_Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.Figure1(params.Paper())
	}
}

// --- Figure 2: two-phase commit latency ---

func BenchmarkFigure2_TwoPhase(b *testing.B) {
	p := params.Paper()
	for _, v := range exp.Figure2Variants {
		for subs := 0; subs <= 3; subs++ {
			name := fmt.Sprintf("%s/subs=%d", v.Name, subs)
			b.Run(name, func(b *testing.B) {
				var mean float64
				for i := 0; i < b.N; i++ {
					res := exp.MeasureLatency(exp.LatencySpec{
						Subs: subs, Opts: v.Opts, ReadOnly: v.ReadOnly,
						Trials: 8, Params: p, Seed: int64(subs),
					})
					mean = res.Total.Mean()
				}
				b.ReportMetric(mean, "simms/txn")
			})
		}
	}
}

// --- Figure 3: non-blocking commit latency ---

func BenchmarkFigure3_NonBlocking(b *testing.B) {
	p := params.Paper()
	for _, ro := range []bool{false, true} {
		kind := "write"
		if ro {
			kind = "read"
		}
		for subs := 1; subs <= 3; subs++ {
			b.Run(fmt.Sprintf("%s/subs=%d", kind, subs), func(b *testing.B) {
				var mean float64
				for i := 0; i < b.N; i++ {
					res := exp.MeasureLatency(exp.LatencySpec{
						Subs: subs, Opts: camelot.Options{NonBlocking: true},
						ReadOnly: ro, Trials: 8, Params: p, Seed: int64(subs),
					})
					mean = res.Total.Mean()
				}
				b.ReportMetric(mean, "simms/txn")
			})
		}
	}
}

// --- Figure 4: update throughput ---

func BenchmarkFigure4_UpdateThroughput(b *testing.B) {
	p := params.VAX()
	for _, cfg := range []struct {
		name    string
		threads int
		gc      bool
	}{
		{"group-commit", 20, true},
		{"threads=20", 20, false},
		{"threads=5", 5, false},
		{"threads=1", 1, false},
	} {
		for pairs := 1; pairs <= 4; pairs++ {
			b.Run(fmt.Sprintf("%s/pairs=%d", cfg.name, pairs), func(b *testing.B) {
				var tps float64
				for i := 0; i < b.N; i++ {
					r := exp.MeasureThroughput(exp.ThroughputSpec{
						Pairs: pairs, Threads: cfg.threads, GroupCommit: cfg.gc,
						Params: p, Window: 10 * time.Second, Seed: int64(pairs),
					})
					tps = r.TPS
				}
				b.ReportMetric(tps, "simTPS")
			})
		}
	}
}

// --- Figure 5: read throughput ---

func BenchmarkFigure5_ReadThroughput(b *testing.B) {
	p := params.VAX()
	for _, threads := range []int{20, 5, 1} {
		for pairs := 1; pairs <= 4; pairs++ {
			b.Run(fmt.Sprintf("threads=%d/pairs=%d", threads, pairs), func(b *testing.B) {
				var tps float64
				for i := 0; i < b.N; i++ {
					r := exp.MeasureThroughput(exp.ThroughputSpec{
						Pairs: pairs, Threads: threads, ReadOnly: true, GroupCommit: true,
						Params: p, Window: 10 * time.Second, Seed: int64(pairs),
					})
					tps = r.TPS
				}
				b.ReportMetric(tps, "simTPS")
			})
		}
	}
}

// --- §4.1: RPC latency breakdown ---

func BenchmarkRPCBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.RPCBreakdown(params.Paper(), 50)
	}
}

// --- §4.2: multicast variance ---

func BenchmarkMulticastVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.MulticastVariance(params.Paper(), 20)
	}
}

// --- §4.2: lock contention ---

func BenchmarkLockContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.LockContention(params.Paper(), 8)
	}
}

// --- Ablations ---

func BenchmarkAblationGroupCommit(b *testing.B) {
	p := params.VAX()
	for i := 0; i < b.N; i++ {
		off := exp.MeasureThroughput(exp.ThroughputSpec{
			Pairs: 4, Threads: 20, GroupCommit: false, Params: p,
			Window: 10 * time.Second, Seed: 1,
		})
		on := exp.MeasureThroughput(exp.ThroughputSpec{
			Pairs: 4, Threads: 20, GroupCommit: true, Params: p,
			Window: 10 * time.Second, Seed: 1,
		})
		if off.TPS > 0 {
			b.ReportMetric(on.TPS/off.TPS, "speedup")
		}
	}
}

func BenchmarkAblationReadOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.AblationReadOnly(params.Paper(), 8)
	}
}

func BenchmarkAblationCommitVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.AblationCommitVariants(params.Paper(), 8)
	}
}
