# Build and verification entry points. `make check` is the gate a
# change must pass before merging: formatting, vet, a full build, the
# camelot-lint determinism suite, the entire test suite under the race
# detector, a short pass over the fault-injection torture suite, a
# bounded systematic chaos sweep for the commitment protocols, and the
# Paxos Commit conformance gate.

GO ?= go

.PHONY: all build test check fmt vet lint race torture chaos paxos golden bench cluster netem loadgen

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# camelot-lint statically enforces the simulation-determinism and
# protocol-invariant rules (see DESIGN.md §8): no unordered map
# iteration, wall-clock reads, or raw goroutines in simulated code,
# no wal force without its trace event, plus the protocol-surface
# exhaustiveness suite — every wire.Kind and wal.RecType must be
# registered, handled, chaos-covered, and produced (or carry a
# justified //lint: directive). The whole suite shares one parse and
# type-check of the module.
lint:
	$(GO) run ./cmd/camelot-lint ./...

race:
	$(GO) test -race ./...

# A quick pass over the randomized fault-injection suite (-short trims
# the seed count); the full sweep runs with plain `go test ./camelot`.
torture:
	$(GO) test -short -run TestAtomicityUnderRandomFaults ./camelot

# A bounded systematic fault sweep per commitment protocol: the pilot
# enumerates every injection point (log writes, datagram sends,
# checkpoint truncations) and camelot-chaos replays the workload with
# one fault per sampled point, checking the recovery oracle each time.
# The unbounded sweep is `go run ./cmd/camelot-chaos` (drop -points).
chaos:
	$(GO) run ./cmd/camelot-chaos -points 200
	$(GO) run ./cmd/camelot-chaos -points 200 -nonblocking

# The Paxos Commit gate (DESIGN.md §10): the budget-conformance suite
# pinning the Gray–Lamport message/force table, the chaos sweep over
# acceptor forces and 2b datagrams, the non-blocking-under-any-crash
# regression, and the real-process coordinator-kill cluster smoke.
paxos:
	$(GO) test ./camelot -run 'TestProtocolBudgetTable|TestPaxos'
	$(GO) test ./internal/chaos -run TestPaxos
	$(GO) run ./cmd/camelot-chaos -points 200 -protocol paxos
	$(GO) test ./cmd/camelot-cluster -run TestClusterPaxosSmoke

# Regenerate the camelot-trace golden files after an intended change
# to the event schema or the simulation timeline. Lints first: goldens
# regenerated from a tree that breaks the determinism rules would bake
# a nondeterministic timeline into the repository.
golden: lint
	$(GO) test ./cmd/camelot-trace -update

# Machine-readable benchmark report for the performance trajectory:
# every simulated table plus the host-dependent real-runtime (R1) and
# real-network (R2/R3/R4, including the sharded data tier) experiments.
# CI archives the file per commit.
bench:
	$(GO) run ./cmd/camelot-bench -quick -json -realtime -realnet > BENCH_8.json
	@echo "wrote BENCH_8.json"

# The open-loop load generator (R5, DESIGN.md §13): a seeded arrival
# schedule at each target rate drives a freshly booted real 3-site
# cluster per cell over the ctl control plane; latency is measured
# from each operation's intended arrival time, so queueing delay under
# overload lands in the percentiles instead of vanishing (coordinated
# omission). CI archives the camelot-load/v1 report.
loadgen:
	$(GO) run ./cmd/camelot-bench -loadgen -json -rates 200,500,1000 \
		-protocols 2pc,nb,paxos -duration 1s -sessions 64 -seed 1 \
		> loadgen-report.json
	@echo "wrote loadgen-report.json"

# A real multi-process cluster on loopback: spawn camelot-node
# daemons, run the seeded distributed workload with a mid-run SIGKILL
# and restart, and check the recovery oracle over the control plane.
cluster:
	$(GO) run ./cmd/camelot-cluster -nodes 3 -txns 200 -seed 1

# The real-network fault storm (DESIGN.md §12): replay the seeded CI
# netem/v1 schedule — lossy duplicating reordering links, a 30s
# one-way partition, a mid-run SIGKILL/restart, a SIGSTOP freeze, and
# a WAL disk death — against a 3-site loopback cluster through the
# emulator proxies, then heal and check every oracle rule plus the
# pinned retransmit+inquiry budget (no storm). The JSON report lands
# in netem-report.json; CI archives it.
netem:
	$(GO) run ./cmd/camelot-cluster -nodes 3 -seed 42 \
		-netem cmd/camelot-cluster/testdata/netem-ci.json \
		-retry-cap 800ms -max-retry 12000 -json > netem-report.json
	@echo "wrote netem-report.json"

check: fmt vet build lint race torture chaos paxos
	@echo "check: OK"
