# Build and verification entry points. `make check` is the gate a
# change must pass before merging: formatting, vet, a full build, the
# entire test suite under the race detector, and a short pass over the
# fault-injection torture suite.

GO ?= go

.PHONY: all build test check fmt vet race torture golden

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# A quick pass over the randomized fault-injection suite (-short trims
# the seed count); the full sweep runs with plain `go test ./camelot`.
torture:
	$(GO) test -short -run TestAtomicityUnderRandomFaults ./camelot

# Regenerate the camelot-trace golden files after an intended change
# to the event schema or the simulation timeline.
golden:
	$(GO) test ./cmd/camelot-trace -update

check: fmt vet build race torture
	@echo "check: OK"
